// Unit tests for the HFC substrate: topology placement and set-top boxes.
#include <gtest/gtest.h>

#include <vector>

#include "hfc/settop.hpp"
#include "hfc/topology.hpp"

namespace vodcache::hfc {
namespace {

// ---------------------------------------------------------------- Topology

TEST(Topology, NeighborhoodCountRoundsUp) {
  EXPECT_EQ(Topology::build(1000, 100).neighborhood_count(), 10u);
  EXPECT_EQ(Topology::build(1001, 100).neighborhood_count(), 11u);
  EXPECT_EQ(Topology::build(99, 100).neighborhood_count(), 1u);
}

TEST(Topology, EveryUserHasValidPlacement) {
  const auto topology = Topology::build(937, 100);
  for (std::uint32_t u = 0; u < 937; ++u) {
    const auto n = topology.neighborhood_of(UserId{u});
    const auto p = topology.peer_of(UserId{u});
    EXPECT_LT(n.value(), topology.neighborhood_count());
    EXPECT_LT(p.value(), topology.size_of(n));
  }
}

TEST(Topology, PlacementIsAPartition) {
  const auto topology = Topology::build(500, 64);
  // (neighborhood, peer) pairs must be unique across users.
  std::vector<std::vector<bool>> seen(topology.neighborhood_count());
  for (std::uint32_t n = 0; n < topology.neighborhood_count(); ++n) {
    seen[n].assign(topology.size_of(NeighborhoodId{n}), false);
  }
  for (std::uint32_t u = 0; u < 500; ++u) {
    const auto n = topology.neighborhood_of(UserId{u}).value();
    const auto p = topology.peer_of(UserId{u}).value();
    EXPECT_FALSE(seen[n][p]) << "duplicate slot for user " << u;
    seen[n][p] = true;
  }
}

TEST(Topology, SizesSumToUserCount) {
  const auto topology = Topology::build(12345, 1000);
  std::uint64_t total = 0;
  for (std::uint32_t n = 0; n < topology.neighborhood_count(); ++n) {
    total += topology.size_of(NeighborhoodId{n});
  }
  EXPECT_EQ(total, 12345u);
}

TEST(Topology, LastNeighborhoodHoldsRemainder) {
  const auto topology = Topology::build(250, 100);
  EXPECT_EQ(topology.size_of(NeighborhoodId{0}), 100u);
  EXPECT_EQ(topology.size_of(NeighborhoodId{1}), 100u);
  EXPECT_EQ(topology.size_of(NeighborhoodId{2}), 50u);
}

TEST(Topology, ExactDivisionHasNoRemainder) {
  const auto topology = Topology::build(300, 100);
  EXPECT_EQ(topology.neighborhood_count(), 3u);
  EXPECT_EQ(topology.size_of(NeighborhoodId{2}), 100u);
}

// Section V-B: "Peer placement is the same for each execution of the
// simulation with the same neighborhood size parameter."
TEST(Topology, PlacementDeterministicAcrossBuilds) {
  const auto a = Topology::build(2000, 250);
  const auto b = Topology::build(2000, 250);
  for (std::uint32_t u = 0; u < 2000; ++u) {
    EXPECT_EQ(a.neighborhood_of(UserId{u}), b.neighborhood_of(UserId{u}));
    EXPECT_EQ(a.peer_of(UserId{u}), b.peer_of(UserId{u}));
  }
}

TEST(Topology, PlacementShuffled) {
  // Users should not be assigned in identity order (0..k to neighborhood 0).
  const auto topology = Topology::build(10000, 1000);
  std::uint32_t in_order = 0;
  for (std::uint32_t u = 0; u < 1000; ++u) {
    in_order += (topology.neighborhood_of(UserId{u}).value() == 0);
  }
  // Uniformly random placement puts ~10% of the first 1000 users in
  // neighborhood 0; identity order would put 100%.
  EXPECT_LT(in_order, 300u);
  EXPECT_GT(in_order, 20u);
}

TEST(Topology, DifferentNeighborhoodSizeDifferentPlacement) {
  const auto a = Topology::build(5000, 100);
  const auto b = Topology::build(5000, 500);
  std::uint32_t same_peer = 0;
  for (std::uint32_t u = 0; u < 5000; ++u) {
    same_peer += (a.peer_of(UserId{u}) == b.peer_of(UserId{u}));
  }
  EXPECT_LT(same_peer, 2000u);
}

TEST(Topology, SingleUserSystem) {
  const auto topology = Topology::build(1, 1000);
  EXPECT_EQ(topology.neighborhood_count(), 1u);
  EXPECT_EQ(topology.size_of(NeighborhoodId{0}), 1u);
  EXPECT_EQ(topology.neighborhood_of(UserId{0}), NeighborhoodId{0});
  EXPECT_EQ(topology.peer_of(UserId{0}), PeerId{0});
}

TEST(Topology, NeighborhoodAndPeerAgreeAcrossRemainderBoundary) {
  // 5 full neighborhoods of 64 plus a 13-user remainder: every user's
  // peer index must be valid *for the neighborhood it was placed in*,
  // including the smaller last one.
  const auto topology = Topology::build(5 * 64 + 13, 64);
  ASSERT_EQ(topology.neighborhood_count(), 6u);
  EXPECT_EQ(topology.size_of(NeighborhoodId{5}), 13u);
  for (std::uint32_t u = 0; u < 5 * 64 + 13; ++u) {
    const auto n = topology.neighborhood_of(UserId{u});
    EXPECT_LT(topology.peer_of(UserId{u}).value(), topology.size_of(n))
        << "user " << u << " in neighborhood " << n.value();
  }
}

// ------------------------------------------------------------- Tier levels

TierLevelSpec hub_spec(std::uint32_t fan_in) {
  TierLevelSpec spec;
  spec.fan_in = fan_in;
  spec.capacity = DataSize::gigabytes(100);
  return spec;
}

TEST(Topology, TwoArgBuildHasNoTiers) {
  const auto topology = Topology::build(1000, 100);
  EXPECT_EQ(topology.tier_count(), 0u);
  EXPECT_TRUE(topology.tiers().empty());
}

TEST(Topology, TierNodeMappingRoundsUp) {
  // 10 neighborhoods under fan-in-4 hubs: nodes {0,1,2}, the last one
  // covering only 2 neighborhoods.
  const auto topology = Topology::build(1000, 100, {hub_spec(4)});
  ASSERT_EQ(topology.tier_count(), 1u);
  EXPECT_EQ(topology.tier_node_count(0), 3u);
  EXPECT_EQ(topology.tier_node_of(0, NeighborhoodId{0}), 0u);
  EXPECT_EQ(topology.tier_node_of(0, NeighborhoodId{3}), 0u);
  EXPECT_EQ(topology.tier_node_of(0, NeighborhoodId{4}), 1u);
  EXPECT_EQ(topology.tier_node_of(0, NeighborhoodId{9}), 2u);
}

TEST(Topology, ChainedTierDivisorsCompose) {
  // 24 neighborhoods -> fan-in-4 hubs (6 nodes) -> fan-in-3 regions
  // (2 nodes): level 1's divisor is the *product* of fan-ins.
  const auto topology =
      Topology::build(2400, 100, {hub_spec(4), hub_spec(3)});
  ASSERT_EQ(topology.tier_count(), 2u);
  EXPECT_EQ(topology.tier_node_count(0), 6u);
  EXPECT_EQ(topology.tier_node_count(1), 2u);
  EXPECT_EQ(topology.tier_node_of(1, NeighborhoodId{11}), 0u);
  EXPECT_EQ(topology.tier_node_of(1, NeighborhoodId{12}), 1u);
}

TEST(Topology, TiersDoNotPerturbPlacement) {
  // The tier tree sits above the neighborhoods; adding one must not move
  // a single user (the two-level world is the degenerate case).
  const auto flat = Topology::build(2000, 250);
  const auto tiered = Topology::build(2000, 250, {hub_spec(8)});
  for (std::uint32_t u = 0; u < 2000; ++u) {
    EXPECT_EQ(flat.neighborhood_of(UserId{u}),
              tiered.neighborhood_of(UserId{u}));
    EXPECT_EQ(flat.peer_of(UserId{u}), tiered.peer_of(UserId{u}));
  }
}

TEST(TierLevelSpec, OutageWindowIsHalfOpen) {
  TierLevelSpec spec = hub_spec(4);
  spec.outages.push_back(
      {sim::SimTime::hours(10), sim::SimTime::hours(2)});
  EXPECT_FALSE(spec.in_outage(sim::SimTime::hours(9)));
  EXPECT_TRUE(spec.in_outage(sim::SimTime::hours(10)));
  EXPECT_TRUE(spec.in_outage(sim::SimTime::hours(11)));
  EXPECT_FALSE(spec.in_outage(sim::SimTime::hours(12)));
}

// ---------------------------------------------------------------- CoaxSpec

TEST(CoaxSpec, PaperConstants) {
  const CoaxSpec spec;
  EXPECT_DOUBLE_EQ(spec.downstream_low.gbps(), 4.9);
  EXPECT_DOUBLE_EQ(spec.downstream_high.gbps(), 6.6);
  EXPECT_DOUBLE_EQ(spec.tv_broadcast.gbps(), 3.3);
  EXPECT_DOUBLE_EQ(spec.upstream.mbps(), 215.0);
  EXPECT_NEAR(spec.available_low().gbps(), 1.6, 1e-9);
  EXPECT_NEAR(spec.available_high().gbps(), 3.3, 1e-9);
}

// ------------------------------------------------------------- StreamSlots

sim::Interval span(std::int64_t from_s, std::int64_t to_s) {
  return {sim::SimTime::seconds(from_s), sim::SimTime::seconds(to_s)};
}

TEST(StreamSlots, AcquireUpToLimit) {
  StreamSlots slots(2);
  EXPECT_TRUE(slots.try_acquire(span(0, 300)));
  EXPECT_TRUE(slots.try_acquire(span(0, 300)));
  EXPECT_FALSE(slots.try_acquire(span(0, 300)));
}

TEST(StreamSlots, ReleasesAfterExpiry) {
  StreamSlots slots(2);
  EXPECT_TRUE(slots.try_acquire(span(0, 300)));
  EXPECT_TRUE(slots.try_acquire(span(0, 300)));
  // Both transmissions ended by t=300.
  EXPECT_TRUE(slots.try_acquire(span(300, 600)));
  EXPECT_EQ(slots.active(sim::SimTime::seconds(300)), 1);
}

TEST(StreamSlots, EndExactlyAtQueryIsFree) {
  StreamSlots slots(1);
  EXPECT_TRUE(slots.try_acquire(span(0, 100)));
  EXPECT_EQ(slots.active(sim::SimTime::seconds(100)), 0);
}

TEST(StreamSlots, OverlappingWindows) {
  StreamSlots slots(2);
  EXPECT_TRUE(slots.try_acquire(span(0, 300)));
  EXPECT_TRUE(slots.try_acquire(span(100, 400)));
  EXPECT_FALSE(slots.try_acquire(span(200, 500)));
  EXPECT_TRUE(slots.try_acquire(span(300, 600)));  // first expired
}

TEST(StreamSlots, UncheckedExceedsLimit) {
  StreamSlots slots(2);
  slots.acquire_unchecked(span(0, 300));
  slots.acquire_unchecked(span(0, 300));
  slots.acquire_unchecked(span(0, 300));  // viewer playback never blocked
  EXPECT_EQ(slots.active(sim::SimTime::seconds(1)), 3);
  EXPECT_FALSE(slots.try_acquire(span(1, 10)));
}

TEST(StreamSlots, ViewerOccupancyBlocksServing) {
  // The paper's serving-side rule: a box already watching 2 streams cannot
  // serve a third.
  StreamSlots slots(2);
  slots.acquire_unchecked(span(0, 1000));  // viewer's own playback
  EXPECT_TRUE(slots.try_acquire(span(10, 310)));   // one serve fits
  EXPECT_FALSE(slots.try_acquire(span(20, 320)));  // second serve refused
}

TEST(StreamSlots, ZeroLimitRefusesAll) {
  StreamSlots slots(0);
  EXPECT_FALSE(slots.try_acquire(span(0, 1)));
}

// ---------------------------------------------------------------- SetTopBox

TEST(SetTopBox, HoldsContributionAndSlots) {
  SetTopBox box(PeerId{7}, DataSize::gigabytes(10), 2);
  EXPECT_EQ(box.id(), PeerId{7});
  EXPECT_EQ(box.storage_contribution(), DataSize::gigabytes(10));
  EXPECT_EQ(box.slots().limit(), 2);
}

}  // namespace
}  // namespace vodcache::hfc
