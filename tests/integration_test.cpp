// Integration and property tests across the whole stack: invariants that
// must hold for every strategy and workload, plus the qualitative results
// the paper's evaluation rests on, checked on scaled-down workloads.
#include <gtest/gtest.h>

#include <string>

#include "analysis/load_analysis.hpp"
// (demand_meter is used for horizon-clipped demand comparisons)
#include "core/vod_system.hpp"
#include "test_support.hpp"
#include "trace/generator.hpp"
#include "trace/scaler.hpp"

namespace vodcache::core {
namespace {

SystemConfig base_config(StrategyKind kind, std::uint32_t neighborhood_size,
                         std::int64_t per_peer_mb) {
  SystemConfig config;
  config.neighborhood_size = neighborhood_size;
  config.per_peer_storage = DataSize::megabytes(per_peer_mb);
  config.strategy.kind = kind;
  config.strategy.lfu_history = sim::SimTime::hours(24);
  config.warmup = sim::SimTime::days(1);
  return config;
}

SimulationReport run(const trace::Trace& trace, const SystemConfig& config) {
  VodSystem system(trace, config);
  return system.run();
}

// ------------------------------------------- invariants for all strategies

class EveryStrategy : public ::testing::TestWithParam<StrategyKind> {};

INSTANTIATE_TEST_SUITE_P(Strategies, EveryStrategy,
                         ::testing::Values(StrategyKind::None,
                                           StrategyKind::Lru,
                                           StrategyKind::Lfu,
                                           StrategyKind::Oracle,
                                           StrategyKind::GlobalLfu),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(EveryStrategy, ConservationAndAccounting) {
  const auto trace =
      trace::generate_power_info_like(test::small_workload(3));
  const auto report = run(trace, base_config(GetParam(), 50, 500));

  // Every byte on the coax came from the server or a peer.
  EXPECT_NEAR(report.coax_bits, report.server_bits + report.peer_bits,
              report.coax_bits * 1e-9 + 1.0);
  // Every segment request was served exactly once.
  EXPECT_EQ(report.segments,
            report.hits + report.cold_misses + report.busy_misses);
  // All sessions replayed.
  EXPECT_EQ(report.sessions, trace.session_count());
  // Coax traffic equals total demand (broadcast carries each stream once).
  // Both sides metered over the same horizon so clipping is identical.
  const double demand =
      analysis::demand_meter(trace, DataRate::megabits_per_second(8.06))
          .total_bits();
  EXPECT_NEAR(report.coax_bits, demand, demand * 1e-6);
}

TEST_P(EveryStrategy, CacheNeverExceedsCapacity) {
  const auto trace =
      trace::generate_power_info_like(test::small_workload(3));
  const auto config = base_config(GetParam(), 40, 400);
  const auto report = run(trace, config);
  for (const auto& n : report.neighborhoods) {
    EXPECT_LE(n.cache_used, n.cache_capacity);
    EXPECT_EQ(n.cache_capacity,
              config.per_peer_storage * n.peer_count);
  }
}

TEST_P(EveryStrategy, ServerLoadNeverExceedsDemand) {
  const auto trace =
      trace::generate_power_info_like(test::small_workload(3));
  const auto report = run(trace, base_config(GetParam(), 50, 500));
  const double demand =
      static_cast<double>(trace.total_demand(DataRate::megabits_per_second(8.06))
                              .bit_count());
  EXPECT_LE(report.server_bits, demand * (1.0 + 1e-9));
}

TEST_P(EveryStrategy, DeterministicEndToEnd) {
  const auto trace =
      trace::generate_power_info_like(test::small_workload(2));
  const auto config = base_config(GetParam(), 50, 300);
  const auto a = run(trace, config);
  const auto b = run(trace, config);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.cold_misses, b.cold_misses);
  EXPECT_EQ(a.busy_misses, b.busy_misses);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_DOUBLE_EQ(a.server_bits, b.server_bits);
}

// ----------------------------------------------- qualitative paper results

// Shared medium workload for the comparative tests (generated once).
const trace::Trace& medium_trace() {
  static const trace::Trace trace = [] {
    auto config = test::small_workload(6, 2024);
    config.user_count = 600;
    config.program_count = 150;
    config.sessions_per_user_per_day = 5.0;
    return trace::generate_power_info_like(config);
  }();
  return trace;
}

TEST(PaperProperties, CachingReducesServerLoad) {
  // ~200 GB per 100-peer neighborhood vs a ~465 GB catalog.
  const auto none = run(medium_trace(), base_config(StrategyKind::None, 100, 0));
  const auto lfu =
      run(medium_trace(), base_config(StrategyKind::Lfu, 100, 2000));
  EXPECT_LT(lfu.server_bits, 0.9 * none.server_bits);
  EXPECT_LT(lfu.server_peak.mean.bps(), none.server_peak.mean.bps());
}

TEST(PaperProperties, BiggerCacheNeverWorse) {
  // Figure 8's monotone trend.
  const auto small = run(medium_trace(), base_config(StrategyKind::Lfu, 100, 500));
  const auto medium = run(medium_trace(), base_config(StrategyKind::Lfu, 100, 2000));
  const auto large = run(medium_trace(), base_config(StrategyKind::Lfu, 100, 8000));
  EXPECT_LE(medium.server_bits, small.server_bits * 1.02);
  EXPECT_LE(large.server_bits, medium.server_bits * 1.02);
}

TEST(PaperProperties, OracleBeatsRealizableStrategies) {
  // Figure 8: the oracle is the lower envelope.
  const auto config_size = 1000;  // MB/peer; small enough to force choice
  const auto lru = run(medium_trace(),
                       base_config(StrategyKind::Lru, 100, config_size));
  const auto lfu = run(medium_trace(),
                       base_config(StrategyKind::Lfu, 100, config_size));
  const auto oracle = run(medium_trace(),
                          base_config(StrategyKind::Oracle, 100, config_size));
  EXPECT_LE(oracle.server_bits, lfu.server_bits * 1.02);
  EXPECT_LE(oracle.server_bits, lru.server_bits * 1.02);
}

TEST(PaperProperties, LfuAtLeastAsGoodAsLru) {
  // Section VI-A: "the LFU algorithm performs the same, if not better than,
  // the LRU algorithm in all cases."  Allow a small tolerance: the claim is
  // statistical, not per-sample.
  const auto lru = run(medium_trace(), base_config(StrategyKind::Lru, 100, 1000));
  const auto lfu = run(medium_trace(), base_config(StrategyKind::Lfu, 100, 1000));
  EXPECT_LE(lfu.server_bits, lru.server_bits * 1.05);
}

TEST(PaperProperties, GlobalLfuAtLeastAsGoodAsLocalLfu) {
  // Figure 13: global popularity data helps, a little.
  const auto local = run(medium_trace(), base_config(StrategyKind::Lfu, 60, 1000));
  auto global_config = base_config(StrategyKind::GlobalLfu, 60, 1000);
  const auto global = run(medium_trace(), global_config);
  EXPECT_LE(global.server_bits, local.server_bits * 1.05);
}

TEST(PaperProperties, CoaxTrafficScalesWithNeighborhoodSize) {
  // Figure 14: linear growth of coax traffic with neighborhood size.
  const auto small = run(medium_trace(), base_config(StrategyKind::Lfu, 100, 200));
  const auto large = run(medium_trace(), base_config(StrategyKind::Lfu, 300, 200));
  ASSERT_GT(small.coax_peak_pooled.mean.bps(), 0.0);
  const double ratio = large.coax_peak_pooled.mean.bps() /
                       small.coax_peak_pooled.mean.bps();
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(PaperProperties, PopulationScalingIsLinear) {
  // Figure 16(b): doubling the population roughly doubles the server load;
  // the percentage saving stays fixed.
  const auto trace1 = medium_trace();
  const auto trace2 = trace::scale_population(trace1, 2);
  const auto config = base_config(StrategyKind::Lfu, 100, 200);
  const auto r1 = run(trace1, config);
  const auto r2 = run(trace2, config);
  const double ratio = r2.server_bits / r1.server_bits;
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(PaperProperties, CatalogScalingDegradesCache) {
  // Figure 16(c): a bigger catalog dilutes the cache.
  const auto trace1 = medium_trace();
  const auto trace3 = trace::scale_catalog(trace1, 3);
  const auto config = base_config(StrategyKind::Lfu, 100, 2000);
  const auto r1 = run(trace1, config);
  const auto r3 = run(trace3, config);
  EXPECT_GT(r3.server_bits, r1.server_bits);
  // But demand is unchanged: degradation only, no amplification.
  EXPECT_LE(r3.server_bits,
            static_cast<double>(
                trace1.total_demand(DataRate::megabits_per_second(8.06))
                    .bit_count()) *
                (1.0 + 1e-9));
}

TEST(PaperProperties, BusyMissesAppearUnderContention) {
  // With tiny neighborhoods every hit funnels through few peers: the
  // 2-stream limit must produce busy misses under concurrency.
  auto config = base_config(StrategyKind::Lfu, 10, 2000);
  const auto report = run(medium_trace(), config);
  EXPECT_GT(report.busy_misses, 0u);
}

TEST(PaperProperties, WarmupExclusionDropsEarlySamples) {
  // Tiny test systems converge within hours, so the warmed/unwarmed *means*
  // differ only by day-to-day demand noise; what must hold exactly is the
  // mechanism: the warmed run reports a later measurement start and fewer
  // peak-window samples (cache behaviour itself is identical).
  auto with_warmup = base_config(StrategyKind::Lfu, 100, 2000);
  auto without = with_warmup;
  without.warmup = sim::SimTime{};
  const auto a = run(medium_trace(), with_warmup);
  const auto b = run(medium_trace(), without);
  EXPECT_EQ(a.measured_from, sim::SimTime::days(1));
  EXPECT_EQ(b.measured_from, sim::SimTime{});
  EXPECT_LT(a.server_peak.sample_count, b.server_peak.sample_count);
  EXPECT_EQ(a.server_bits, b.server_bits);
  EXPECT_EQ(a.hits, b.hits);
}

// ------------------------------------------------------- parameter sweeps

struct SweepCase {
  std::uint32_t neighborhood;
  std::int64_t per_peer_mb;
};

class CacheSizeSweep : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sizes, CacheSizeSweep,
    ::testing::Values(SweepCase{25, 100}, SweepCase{25, 400},
                      SweepCase{50, 100}, SweepCase{50, 400},
                      SweepCase{100, 100}, SweepCase{100, 400},
                      SweepCase{200, 400}),
    [](const auto& info) {
      // std::string("n") rather than "n" + rvalue: GCC 12's -Wrestrict
      // false positive (PR105329) fires on the const char* + string&&
      // overload at -O2+ (same workaround as bench_fig15).
      return std::string("n") + std::to_string(info.param.neighborhood) +
             "_mb" + std::to_string(info.param.per_peer_mb);
    });

TEST_P(CacheSizeSweep, InvariantsHoldAcrossTopologies) {
  const auto& param = GetParam();
  const auto report =
      run(medium_trace(),
          base_config(StrategyKind::Lfu, param.neighborhood, param.per_peer_mb));
  EXPECT_EQ(report.segments,
            report.hits + report.cold_misses + report.busy_misses);
  EXPECT_NEAR(report.coax_bits, report.server_bits + report.peer_bits,
              report.coax_bits * 1e-9 + 1.0);
  for (const auto& n : report.neighborhoods) {
    EXPECT_LE(n.cache_used, n.cache_capacity);
  }
  // Neighborhood session counts sum to the trace.
  std::uint64_t sessions = 0;
  for (const auto& n : report.neighborhoods) sessions += n.sessions;
  EXPECT_EQ(sessions, medium_trace().session_count());
}

}  // namespace
}  // namespace vodcache::core
