// Length-aware GreedyDual scorer: value-per-byte ranking, recency
// tie-breaks, and the inflation aging that distinguishes GreedyDual from
// plain size-aware LFU.
#include <gtest/gtest.h>

#include <vector>

#include "cache/greedy_dual.hpp"

namespace vodcache::cache {
namespace {

trace::Catalog lengths_minutes(std::initializer_list<int> mins) {
  std::vector<trace::ProgramInfo> programs;
  for (const int m : mins) {
    programs.push_back({sim::SimTime::minutes(m), sim::SimTime{}, 1.0, 0.0});
  }
  return trace::Catalog(std::move(programs));
}

sim::SimTime at(std::int64_t s) { return sim::SimTime::seconds(s); }

TEST(GreedyDual, LongRarelyWatchedProgramEvictsFirst) {
  // Program 0: 120 min, one access.  Program 1: 30 min, one access.
  // Same frequency, but the short program packs 4x the value per byte.
  const auto catalog = lengths_minutes({120, 30});
  GreedyDualScorer scorer(catalog);
  scorer.record_access(ProgramId{0}, at(0));
  scorer.on_admit(ProgramId{0}, at(0));
  scorer.record_access(ProgramId{1}, at(10));
  scorer.on_admit(ProgramId{1}, at(10));

  EXPECT_EQ(scorer.victim(at(20)), std::optional<ProgramId>(ProgramId{0}));
}

TEST(GreedyDual, FrequencyOvercomesLength) {
  // Four accesses to the 120-min program match one access to the 30-min
  // program per byte; the fifth outranks it.
  const auto catalog = lengths_minutes({120, 30});
  GreedyDualScorer scorer(catalog);
  scorer.record_access(ProgramId{1}, at(0));
  scorer.on_admit(ProgramId{1}, at(0));
  for (int i = 0; i < 5; ++i) {
    scorer.record_access(ProgramId{0}, at(10 + i));
  }
  scorer.on_admit(ProgramId{0}, at(20));

  EXPECT_EQ(scorer.victim(at(30)), std::optional<ProgramId>(ProgramId{1}));
}

TEST(GreedyDual, RecencyBreaksTies) {
  // Identical length and frequency: least recently accessed leaves first.
  const auto catalog = lengths_minutes({60, 60});
  GreedyDualScorer scorer(catalog);
  scorer.record_access(ProgramId{0}, at(0));
  scorer.on_admit(ProgramId{0}, at(0));
  scorer.record_access(ProgramId{1}, at(10));
  scorer.on_admit(ProgramId{1}, at(10));

  EXPECT_EQ(scorer.victim(at(20)), std::optional<ProgramId>(ProgramId{0}));
}

TEST(GreedyDual, EvictionRaisesInflation) {
  const auto catalog = lengths_minutes({60, 60});
  GreedyDualScorer scorer(catalog);
  scorer.record_access(ProgramId{0}, at(0));
  scorer.on_admit(ProgramId{0}, at(0));
  EXPECT_EQ(scorer.inflation(), 0);

  const auto victim = scorer.victim(at(10));
  ASSERT_TRUE(victim.has_value());
  scorer.on_evict(*victim);
  // L rose to the evicted program's H = 0 + 1 * scale / 3600 s.
  EXPECT_GT(scorer.inflation(), 0);
}

TEST(GreedyDual, InflationAgesStaleResidents) {
  // A stale resident is eventually outranked by a program it beats on
  // per-byte frequency — the aging that pure frequency/size ranking
  // cannot express.  Program 0 (30 min, 1 access) is admitted at L = 0;
  // program 1 (120 min) cycles through the cache, and although its
  // per-byte frequency stays below the resident's (3 / 120 min <
  // 1 / 30 min), each of its evictions raises L until a fresh copy prices
  // above the resident's frozen admission-time H.
  const auto catalog = lengths_minutes({30, 120});
  GreedyDualScorer scorer(catalog);
  scorer.record_access(ProgramId{0}, at(0));
  scorer.on_admit(ProgramId{0}, at(0));

  int rounds = 0;
  for (; rounds < 10; ++rounds) {
    scorer.record_access(ProgramId{1}, at(100 + rounds));
    scorer.on_admit(ProgramId{1}, at(100 + rounds));
    const auto victim = scorer.victim(at(100 + rounds));
    ASSERT_TRUE(victim.has_value());
    if (*victim == ProgramId{0}) break;  // the resident aged out
    scorer.on_evict(*victim);
  }
  EXPECT_EQ(rounds, 2);  // H1: 138, 415, then 831 > the resident's 555
  EXPECT_EQ(scorer.victim(at(200)), std::optional<ProgramId>(ProgramId{0}));
}

TEST(GreedyDual, WipeOfNonMinimalResidentDoesNotInflate) {
  // Failure injection can remove any resident; only minimum-H (victim)
  // evictions may move L, or survivors would violate L <= min H.
  const auto catalog = lengths_minutes({30, 120});
  GreedyDualScorer scorer(catalog);
  scorer.record_access(ProgramId{0}, at(0));  // short: high H
  scorer.on_admit(ProgramId{0}, at(0));
  scorer.record_access(ProgramId{1}, at(10));  // long: low H (the minimum)
  scorer.on_admit(ProgramId{1}, at(10));

  scorer.on_evict(ProgramId{0});  // wipe the non-minimal resident
  EXPECT_EQ(scorer.inflation(), 0);

  scorer.on_evict(ProgramId{1});  // genuine victim eviction
  EXPECT_GT(scorer.inflation(), 0);
}

TEST(GreedyDual, ScoreOfCandidateUsesCurrentInflation) {
  const auto catalog = lengths_minutes({30});
  GreedyDualScorer scorer(catalog);
  scorer.record_access(ProgramId{0}, at(0));
  const auto before = scorer.score(ProgramId{0}, at(0));
  scorer.on_admit(ProgramId{0}, at(0));
  scorer.on_evict(ProgramId{0});  // victim eviction: L = before.first
  const auto after = scorer.score(ProgramId{0}, at(10));
  EXPECT_EQ(after.first, scorer.inflation() + before.first);
}

}  // namespace
}  // namespace vodcache::cache
