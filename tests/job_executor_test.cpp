// The work-stealing executor's test battery (the safety half of the
// job-graph tentpole): random-DAG topological-order fuzzing, completion
// invariants, steal-under-contention stress, exception propagation, and a
// pinned diamond-DAG memory-visibility regression.  The sharded simulation
// builds its determinism argument on the guarantees pinned here — a node
// runs exactly once, after every predecessor completed, with the
// predecessors' writes visible.
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/job_executor.hpp"
#include "core/job_graph.hpp"
#include "util/rng.hpp"

namespace vodcache::core {
namespace {

// ------------------------------------------------------------- JobGraph

TEST(JobGraph, CsrAdjacencyMatchesDeclaredEdges) {
  JobGraph graph;
  const JobId a = graph.add({}, "a");
  const JobId b = graph.add({}, "b");
  const JobId c = graph.add({}, "c");
  graph.depend(a, b);
  graph.depend(a, c);
  graph.depend(b, c);
  graph.finalize();

  EXPECT_EQ(graph.node_count(), 3u);
  EXPECT_EQ(graph.edge_count(), 3u);
  EXPECT_EQ(graph.dependency_count(a), 0u);
  EXPECT_EQ(graph.dependency_count(b), 1u);
  EXPECT_EQ(graph.dependency_count(c), 2u);
  EXPECT_EQ(graph.children(a).size(), 2u);
  EXPECT_EQ(graph.children(b).size(), 1u);
  EXPECT_EQ(graph.children(b)[0], c);
  EXPECT_TRUE(graph.children(c).empty());
  EXPECT_EQ(graph.name(b), "b");
}

TEST(JobGraph, FinalizeThrowsOnCycleNamingANode) {
  JobGraph graph;
  const JobId a = graph.add({}, "ouroboros-head");
  const JobId b = graph.add({}, "ouroboros-tail");
  graph.depend(a, b);
  graph.depend(b, a);
  try {
    graph.finalize();
    FAIL() << "cycle not detected";
  } catch (const std::logic_error& error) {
    EXPECT_NE(std::string(error.what()).find("ouroboros"), std::string::npos);
  }
}

TEST(JobGraph, MutationAfterFinalizeReopensTheGraph) {
  JobGraph graph;
  const JobId a = graph.add({});
  graph.finalize();
  EXPECT_TRUE(graph.finalized());
  const JobId b = graph.add({});
  EXPECT_FALSE(graph.finalized());
  graph.depend(a, b);
  graph.finalize();
  EXPECT_EQ(graph.dependency_count(b), 1u);
}

// ---------------------------------------------------------- JobExecutor

TEST(JobExecutor, EmptyGraphRunsToCompletion) {
  JobGraph graph;
  JobExecutor executor(4);
  const ExecutorStats stats = executor.run(graph);
  EXPECT_EQ(stats.executed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST(JobExecutor, ZeroWorkersMeansHardwareConcurrency) {
  const JobExecutor executor(0);
  const auto hardware = std::thread::hardware_concurrency();
  EXPECT_EQ(executor.worker_count(), hardware == 0 ? 1u : hardware);
  EXPECT_GE(executor.worker_count(), 1u);
}

TEST(JobExecutor, GraphIsReusableAcrossRuns) {
  std::atomic<int> runs{0};
  JobGraph graph;
  const JobId a = graph.add([&] { runs.fetch_add(1); });
  const JobId b = graph.add([&] { runs.fetch_add(1); });
  graph.depend(a, b);
  JobExecutor executor(2);
  for (int round = 0; round < 3; ++round) {
    const ExecutorStats stats = executor.run(graph);
    EXPECT_EQ(stats.executed, 2u);
  }
  EXPECT_EQ(runs.load(), 6);
}

// Every node runs exactly once and strictly after each of its declared
// predecessors, across ~50 random DAG shapes x random worker counts.  The
// per-node completion stamps come from one shared atomic counter: any
// stamp taken inside a predecessor's closure precedes any stamp taken in a
// successor's, because the executor promises the whole closure completed
// (with a happens-before edge) first.
TEST(JobExecutor, RandomDagsRespectTopologicalOrder) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const auto nodes =
        static_cast<std::size_t>(2 + rng.uniform_u64(60));  // 2..61
    const double edge_p = 0.05 + 0.25 * rng.uniform_double();
    const std::uint32_t worker_choices[] = {1, 2, 3, 4, 8, 16};
    const auto workers = worker_choices[rng.uniform_u64(6)];

    std::vector<std::atomic<std::uint32_t>> ran(nodes);
    for (auto& r : ran) r.store(0);
    std::vector<std::uint64_t> stamp(nodes, 0);
    std::atomic<std::uint64_t> ticket{0};

    JobGraph graph;
    for (std::size_t n = 0; n < nodes; ++n) {
      graph.add([&, n] {
        ran[n].fetch_add(1);
        stamp[n] = ticket.fetch_add(1) + 1;
      });
    }
    // Edges only from lower to higher index: acyclic by construction.
    std::vector<std::pair<JobId, JobId>> edges;
    for (std::size_t a = 0; a < nodes; ++a) {
      for (std::size_t b = a + 1; b < nodes; ++b) {
        if (rng.bernoulli(edge_p)) {
          graph.depend(static_cast<JobId>(a), static_cast<JobId>(b));
          edges.emplace_back(static_cast<JobId>(a), static_cast<JobId>(b));
        }
      }
    }

    JobExecutor executor(workers);
    const ExecutorStats stats = executor.run(graph);

    ASSERT_EQ(stats.executed, nodes) << "seed " << seed;
    ASSERT_EQ(stats.cancelled, 0u) << "seed " << seed;
    for (std::size_t n = 0; n < nodes; ++n) {
      ASSERT_EQ(ran[n].load(), 1u) << "seed " << seed << " node " << n;
      ASSERT_GT(stamp[n], 0u) << "seed " << seed << " node " << n;
    }
    for (const auto& [parent, child] : edges) {
      ASSERT_LT(stamp[parent], stamp[child])
          << "seed " << seed << ": node " << child << " ran before its "
          << "dependency " << parent;
    }
  }
}

// One root fans out into a horde of tiny tasks, all initially queued on the
// deque of whichever worker ran the root — every other worker has to steal
// to participate.  Retried because a pathologically fast owner could in
// principle drain the whole horde before anyone else wakes.
TEST(JobExecutor, StealsUnderContention) {
  constexpr std::uint32_t kWorkers = 8;
  constexpr std::size_t kTasks = 4000;
  std::uint64_t steals = 0;
  for (int attempt = 0; attempt < 5 && steals == 0; ++attempt) {
    std::atomic<std::uint64_t> sum{0};
    JobGraph graph;
    const JobId root = graph.add({});
    for (std::size_t n = 0; n < kTasks; ++n) {
      const JobId task = graph.add([&sum, n] {
        // Enough work per task that the horde outlives worker wakeup.
        std::uint64_t h = n;
        for (int i = 0; i < 400; ++i) h = h * 6364136223846793005ull + 1;
        sum.fetch_add(h == 0 ? 1 : 2, std::memory_order_relaxed);
      });
      graph.depend(root, task);
    }
    JobExecutor executor(kWorkers);
    const ExecutorStats stats = executor.run(graph);
    ASSERT_EQ(stats.executed, kTasks + 1);
    ASSERT_EQ(sum.load(), 2 * kTasks);
    ASSERT_EQ(stats.worker_busy_ms.size(), kWorkers);
    steals = stats.steals;
  }
  EXPECT_GT(steals, 0u);
}

TEST(JobExecutor, ExceptionPropagatesAndCancelsDependents) {
  std::atomic<bool> dependent_ran{false};
  std::atomic<bool> independent_ran{false};
  JobGraph graph;
  const JobId boom =
      graph.add([] { throw std::runtime_error("segment fault (the VOD kind)"); });
  const JobId dependent = graph.add([&] { dependent_ran.store(true); });
  graph.depend(boom, dependent);
  // An independent root may or may not run before the failure is noticed —
  // either is fine; the contract is only that *dependents* of the thrower
  // never run.
  graph.add([&] { independent_ran.store(true); });

  JobExecutor executor(2);
  try {
    executor.run(graph);
    FAIL() << "exception not propagated";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "segment fault (the VOD kind)");
  }
  EXPECT_FALSE(dependent_ran.load());
}

TEST(JobExecutor, ExceptionStatsAccountForEveryNode) {
  JobGraph graph;
  const JobId boom = graph.add([] { throw std::runtime_error("boom"); });
  JobId prev = boom;
  constexpr std::size_t kChain = 20;
  for (std::size_t n = 0; n < kChain; ++n) {
    const JobId next = graph.add([] {});
    graph.depend(prev, next);
    prev = next;
  }
  JobExecutor executor(4);
  try {
    executor.run(graph);
    FAIL() << "exception not propagated";
  } catch (const std::runtime_error&) {
  }
  // The graph must be reusable (and consistent) after a failed run: the
  // executor's per-run state is its own.
  EXPECT_TRUE(graph.finalized());
}

// Pinned regression for the memory-visibility guarantee: a diamond's sink
// must observe both branches' plain (non-atomic) writes, and the branches
// must observe the root's.  Any missing acquire/release in the executor's
// hand-off turns this into a torn read — and a TSan finding.
TEST(JobExecutor, DiamondSinkSeesAllPredecessorWrites) {
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    std::uint64_t root_value = 0;
    std::uint64_t left_value = 0;
    std::uint64_t right_value = 0;
    std::uint64_t sink_sum = 0;

    JobGraph graph;
    const JobId root = graph.add([&] { root_value = 41; });
    const JobId left = graph.add([&] { left_value = root_value + 1; });
    const JobId right = graph.add([&] { right_value = root_value * 2; });
    const JobId sink = graph.add([&] { sink_sum = left_value + right_value; });
    graph.depend(root, left);
    graph.depend(root, right);
    graph.depend(left, sink);
    graph.depend(right, sink);

    JobExecutor executor(4);
    const ExecutorStats stats = executor.run(graph);
    ASSERT_EQ(stats.executed, 4u);
    ASSERT_EQ(sink_sum, 42u + 82u) << "round " << round;
  }
}

// A long dependency chain mutating one plain counter: exactly the shape of
// a shard's chunk chain (feed[s][k-1] -> feed[s][k]), which the simulation
// relies on for single-owner access to per-shard state.
TEST(JobExecutor, ChainMutatesSharedStateWithoutSynchronization) {
  constexpr std::size_t kLinks = 500;
  std::uint64_t counter = 0;
  JobGraph graph;
  JobId prev = graph.add([&] { ++counter; });
  for (std::size_t n = 1; n < kLinks; ++n) {
    const JobId next = graph.add([&] { ++counter; });
    graph.depend(prev, next);
    prev = next;
  }
  JobExecutor executor(8);
  const ExecutorStats stats = executor.run(graph);
  EXPECT_EQ(stats.executed, kLinks);
  EXPECT_EQ(counter, kLinks);
}

TEST(JobExecutor, UtilizationIsAFractionAndBusyTimeIsTracked) {
  JobGraph graph;
  for (int n = 0; n < 64; ++n) {
    graph.add([] {
      volatile std::uint64_t x = 0;
      for (int i = 0; i < 20000; ++i) x = x + static_cast<std::uint64_t>(i);
    });
  }
  JobExecutor executor(2);
  const ExecutorStats stats = executor.run(graph);
  EXPECT_EQ(stats.executed, 64u);
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_GT(stats.utilization(), 0.0);
  EXPECT_LE(stats.utilization(), 1.0 + 1e-9);
}

}  // namespace
}  // namespace vodcache::core
