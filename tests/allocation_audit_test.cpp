// Zero-allocation steady-state audit (ISSUE 7 acceptance criterion).
//
// The data-oriented shard hot path promises: once warmed up, feeding
// sessions through a shard performs no heap allocations at all — the flat
// tables, pooled arenas, ring buffers, lazy heaps, and scratch vectors all
// recycle at their high-water marks.  This binary replaces ::operator new
// with a counting probe and asserts that promise *exactly* (== 0, not
// "small") for the paper-default policy engine configurations:
//
//   * strategy None (no cache), LRU, and LFU (sliding-window expiry
//     exercises the ring buffer and downward CachedSet re-ranks);
//   * whole-program and segment-granularity admission, Always policy;
//   * replication-on-busy, which adds replica-block arena churn.
//
// The warmup must carry the shard past every high-water mark: two full
// diurnal cycles touch all programs, fill the cache into steady eviction
// churn, and see the prime-time session peak twice; day 3 is measured.
// Everything is seeded, so this test is exactly reproducible — a failure
// means a real allocation crept into the hot path, never noise.
//
// The shadow-matrix case audits every registered scorer and admission at
// once: the shadow bank rides the same feed() loop, so its 25 (scorer x
// admission) pairs — GlobalLFU's replay cursor, the Oracle's future-index
// lookups, the TinyLFU sketch, all of them — must be equally
// allocation-free once warm.  Failure storms stay out of scope
// (wipe_peer returns the emptied-program vector by design).
#include <gtest/gtest.h>

#include <string>

#include "alloc_audit_support.hpp"
#include "alloc_probe.hpp"
#include "test_support.hpp"
#include "trace/generator.hpp"

VODCACHE_DEFINE_ALLOC_PROBE();

namespace vodcache {
namespace {

trace::Trace audit_trace() {
  trace::GeneratorConfig workload;
  workload.days = 3;
  workload.user_count = 200;
  workload.program_count = 60;
  workload.sessions_per_user_per_day = 5.0;
  workload.seed = 20260808;
  return trace::generate_power_info_like(workload);
}

core::SystemConfig audit_config(core::StrategyKind strategy) {
  core::SystemConfig config;
  config.neighborhood_size = 200;  // one shard holds the whole population
  // Small enough that ~60 programs of ~1.8 GB overflow it: eviction churn
  // is part of the audited steady state.
  config.per_peer_storage = DataSize::megabytes(200);
  config.strategy.kind = strategy;
  config.strategy.lfu_history = sim::SimTime::hours(12);
  config.admission_policy.kind = core::AdmissionKind::Always;
  return config;
}

struct AuditCase {
  core::StrategyKind strategy;
  core::CacheAdmission admission;
  bool replicate_on_busy;
  const char* label;
};

class AllocationAudit : public ::testing::TestWithParam<AuditCase> {};

INSTANTIATE_TEST_SUITE_P(
    Policies, AllocationAudit,
    ::testing::Values(
        AuditCase{core::StrategyKind::None, core::CacheAdmission::WholeProgram,
                  false, "none"},
        AuditCase{core::StrategyKind::Lru, core::CacheAdmission::WholeProgram,
                  false, "lru_whole"},
        AuditCase{core::StrategyKind::Lfu, core::CacheAdmission::WholeProgram,
                  false, "lfu_whole"},
        AuditCase{core::StrategyKind::Lfu, core::CacheAdmission::Segment,
                  false, "lfu_segment"},
        AuditCase{core::StrategyKind::Lfu, core::CacheAdmission::WholeProgram,
                  true, "lfu_replicate"},
        AuditCase{core::StrategyKind::Lfu, core::CacheAdmission::WholeProgram,
                  false, "lfu_shadow_matrix"}),
    [](const auto& info) { return std::string(info.param.label); });

TEST_P(AllocationAudit, SteadyStateShardLoopIsAllocationFree) {
  const AuditCase c = GetParam();
  auto config = audit_config(c.strategy);
  config.admission = c.admission;
  config.replicate_on_busy = c.replicate_on_busy;
  // The shadow case rides the whole (scorer x admission) matrix — every
  // shadow's stores, sketches, and admission histories must hit their
  // high-water marks within the same warmup.
  config.shadow_matrix =
      std::string(c.label) == "lfu_shadow_matrix";

  const auto trace = audit_trace();
  const auto result =
      test::audit_shard_allocations(trace, config, sim::SimTime::days(2));

  // The measured region must be a real workload, not an empty tail.
  EXPECT_GT(result.steady_sessions, 200u);
  EXPECT_EQ(result.steady_allocs, 0u)
      << result.steady_allocs << " heap allocations across "
      << result.steady_sessions << " steady-state sessions";
}

// The probe itself must count: otherwise a broken override would make the
// audit vacuously green.
TEST(AllocationProbe, CountsOperatorNew) {
  const auto before = test::alloc_count();
  auto* p = new int{42};
  const auto after = test::alloc_count();
  delete p;
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace vodcache
