// Counting allocation probe for the zero-allocation steady-state audit.
//
// VODCACHE_DEFINE_ALLOC_PROBE() expands to replacement definitions of the
// global allocation functions that bump a process-wide counter before
// delegating to malloc/free.  Define it in exactly ONE translation unit of
// a test binary (replacing ::operator new is a program-wide, ODR-unique
// act); every other file can include this header and read the counter.
//
// The probe counts *allocations* (operator new family), not frees — the
// audit asserts "no heap traffic per event after warmup", and a steady
// state that frees without allocating does not exist for the audited
// containers (they never shrink).
//
// This is test-only instrumentation: production binaries never see these
// symbols, so the hot path carries no counting overhead outside the audit.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace vodcache::test {

extern std::atomic<std::uint64_t> g_alloc_count;

inline std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace vodcache::test

// NOLINTBEGIN — replacement allocation functions must use malloc/free.
// -Wmismatched-new-delete is suppressed: with the replacements visible in
// this TU, GCC inlines them and flags the (correct) malloc/free delegation
// as a new/free mismatch.
#define VODCACHE_DEFINE_ALLOC_PROBE()                                         \
  _Pragma("GCC diagnostic push")                                              \
  _Pragma("GCC diagnostic ignored \"-Wmismatched-new-delete\"")               \
  namespace vodcache::test {                                                  \
  std::atomic<std::uint64_t> g_alloc_count{0};                                \
  namespace {                                                                 \
  void* probe_alloc(std::size_t size) {                                       \
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);                    \
    return std::malloc(size == 0 ? 1 : size);                                 \
  }                                                                           \
  void* probe_alloc_aligned(std::size_t size, std::size_t align) {            \
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);                    \
    void* p = nullptr;                                                        \
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,     \
                       size == 0 ? 1 : size) != 0) {                          \
      return nullptr;                                                         \
    }                                                                         \
    return p;                                                                 \
  }                                                                           \
  }                                                                           \
  }                                                                           \
  void* operator new(std::size_t size) {                                      \
    void* p = vodcache::test::probe_alloc(size);                              \
    if (p == nullptr) throw std::bad_alloc{};                                 \
    return p;                                                                 \
  }                                                                           \
  void* operator new[](std::size_t size) {                                    \
    void* p = vodcache::test::probe_alloc(size);                              \
    if (p == nullptr) throw std::bad_alloc{};                                 \
    return p;                                                                 \
  }                                                                           \
  void* operator new(std::size_t size, std::align_val_t align) {              \
    void* p = vodcache::test::probe_alloc_aligned(                            \
        size, static_cast<std::size_t>(align));                               \
    if (p == nullptr) throw std::bad_alloc{};                                 \
    return p;                                                                 \
  }                                                                           \
  void* operator new[](std::size_t size, std::align_val_t align) {            \
    void* p = vodcache::test::probe_alloc_aligned(                            \
        size, static_cast<std::size_t>(align));                               \
    if (p == nullptr) throw std::bad_alloc{};                                 \
    return p;                                                                 \
  }                                                                           \
  void* operator new(std::size_t size, const std::nothrow_t&) noexcept {      \
    return vodcache::test::probe_alloc(size);                                 \
  }                                                                           \
  void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {    \
    return vodcache::test::probe_alloc(size);                                 \
  }                                                                           \
  void* operator new(std::size_t size, std::align_val_t align,                \
                     const std::nothrow_t&) noexcept {                        \
    return vodcache::test::probe_alloc_aligned(                               \
        size, static_cast<std::size_t>(align));                               \
  }                                                                           \
  void* operator new[](std::size_t size, std::align_val_t align,              \
                       const std::nothrow_t&) noexcept {                      \
    return vodcache::test::probe_alloc_aligned(                               \
        size, static_cast<std::size_t>(align));                               \
  }                                                                           \
  void operator delete(void* p) noexcept { std::free(p); }                    \
  void operator delete[](void* p) noexcept { std::free(p); }                  \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }       \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }     \
  void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }  \
  void operator delete[](void* p, std::align_val_t) noexcept {                \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {     \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {   \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete(void* p, const std::nothrow_t&) noexcept {             \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete[](void* p, const std::nothrow_t&) noexcept {           \
    std::free(p);                                                             \
  }                                                                           \
  _Pragma("GCC diagnostic pop")                                               \
  static_assert(true, "require trailing semicolon")
// NOLINTEND
