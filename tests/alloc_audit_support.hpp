// Shard-level steady-state allocation audit harness.
//
// Drives one NeighborhoodShard directly — no orchestrator, no worker pool,
// no per-chunk batch vectors — so the only allocations in the measured
// region are the shard's own.  The audited claim (ISSUE 7 / the data-
// oriented hot path): after a warmup that has (a) touched the content set,
// (b) filled the cache into eviction churn, and (c) carried the session
// population through its daily peak, the feed() loop performs ZERO heap
// allocations per event — every table, arena, ring, heap, and scratch
// buffer has reached its high-water mark and recycles.
//
// The binary including this header must expand VODCACHE_DEFINE_ALLOC_PROBE()
// in exactly one translation unit (see alloc_probe.hpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "alloc_probe.hpp"
#include "core/neighborhood_shard.hpp"
#include "hfc/topology.hpp"
#include "trace/trace.hpp"

namespace vodcache::test {

struct ShardAuditResult {
  std::uint64_t steady_allocs = 0;  // operator new calls after warmup
  std::uint64_t steady_sessions = 0;  // sessions fed after warmup (witness
                                      // that the measured region is real)
};

// Replays neighborhood 0's slice of `trace` through one NeighborhoodShard
// in small batches; allocations are counted for every feed() at or after
// `warmup_end` (the cut lands on a batch boundary).  finish() runs outside
// the measured region: the terminal drain legitimately grows the boundary
// scratch past any per-batch high-water mark.
inline ShardAuditResult audit_shard_allocations(
    const trace::Trace& trace, const core::SystemConfig& config,
    sim::SimTime warmup_end) {
  const auto topology =
      hfc::Topology::build(trace.user_count(), config.neighborhood_size);

  std::vector<core::NeighborhoodShard::StreamSession> sessions;
  const auto& records = trace.sessions();
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (topology.neighborhood_of(records[i].user) != NeighborhoodId{0}) {
      continue;
    }
    sessions.push_back({records[i], i, topology.peer_of(records[i].user)});
  }

  // An Oracle primary needs the future index, a GlobalLFU primary the
  // replay board, and shadow-matrix mode instantiates every registered
  // scorer so it needs both — built here exactly as the orchestrator's
  // prepass would (outside the measured region either way).
  const bool needs_future =
      config.shadow_matrix ||
      config.strategy.kind == core::StrategyKind::Oracle;
  const bool needs_board =
      config.shadow_matrix ||
      config.strategy.kind == core::StrategyKind::GlobalLfu;
  cache::FutureIndex future(needs_future ? trace.catalog().size() : 0);
  std::shared_ptr<cache::ReplayBoard> board;
  if (needs_future) {
    for (const auto& session : sessions) {
      future.add(session.record.program, session.record.start);
    }
  }
  future.freeze();
  if (needs_board) {
    auto replay = std::make_shared<cache::ReplayBoard>(
        trace.catalog().size(), config.strategy.lfu_history,
        config.strategy.global_lag);
    for (const auto& record : records) {
      replay->add(record.program, record.start);
    }
    replay->freeze();
    board = std::move(replay);
  }
  core::NeighborhoodShard shard(
      NeighborhoodId{0}, topology.size_of(NeighborhoodId{0}), trace.catalog(),
      trace.horizon(), config, &future, std::move(board), {});

  constexpr std::size_t kBatch = 256;
  const auto feed_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; i += kBatch) {
      shard.feed({sessions.data() + i, std::min(kBatch, end - i)});
    }
  };

  std::size_t cut = 0;
  while (cut < sessions.size() && sessions[cut].record.start < warmup_end) {
    ++cut;
  }

  feed_range(0, cut);
  const std::uint64_t before = alloc_count();
  feed_range(cut, sessions.size());

  ShardAuditResult result;
  result.steady_allocs = alloc_count() - before;
  result.steady_sessions = sessions.size() - cut;
  shard.finish(sim::SimTime::millis(-1));
  return result;
}

}  // namespace vodcache::test
