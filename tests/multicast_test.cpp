// Tests for the batching-multicast baseline (section IV-A quantified).
#include <gtest/gtest.h>

#include "core/multicast_baseline.hpp"
#include "test_support.hpp"
#include "trace/generator.hpp"

namespace vodcache::core {
namespace {

using test::make_trace;
using test::uniform_catalog;

MulticastConfig config_with_window(std::int64_t seconds) {
  MulticastConfig config;
  config.batch_window = sim::SimTime::seconds(seconds);
  config.stream_rate = DataRate::megabits_per_second(8.0);
  return config;
}

constexpr sim::HourWindow kAllDay{0, 24};

TEST(Multicast, UnbatchedEqualsUnicast) {
  const auto trace = make_trace(
      uniform_catalog(2, 30),
      {{0, 0, 0, 600}, {10, 1, 0, 600}, {2000, 2, 1, 300}}, /*user_count=*/3);
  const auto report =
      simulate_multicast(trace, config_with_window(0), kAllDay);
  EXPECT_EQ(report.batches, 3u);
  EXPECT_DOUBLE_EQ(report.mean_batch_size(), 1.0);
  EXPECT_NEAR(report.server_bits, report.unicast_bits, 1.0);
  EXPECT_NEAR(report.server_bits, 8e6 * 1500, 1.0);
}

TEST(Multicast, SameWindowSharesOneStream) {
  // Two sessions of the same program 10 s apart, 120 s window: one stream
  // running from the first start to the latest end.
  const auto trace = make_trace(uniform_catalog(1, 30),
                                {{0, 0, 0, 600}, {10, 1, 0, 600}},
                                /*user_count=*/2);
  const auto report =
      simulate_multicast(trace, config_with_window(120), kAllDay);
  EXPECT_EQ(report.batches, 1u);
  EXPECT_DOUBLE_EQ(report.mean_batch_size(), 2.0);
  // Stream spans [0, 610): the latest member's end.
  EXPECT_NEAR(report.server_bits, 8e6 * 610, 1.0);
}

TEST(Multicast, DifferentProgramsNeverBatch) {
  const auto trace = make_trace(uniform_catalog(2, 30),
                                {{0, 0, 0, 600}, {10, 1, 1, 600}},
                                /*user_count=*/2);
  const auto report =
      simulate_multicast(trace, config_with_window(600), kAllDay);
  EXPECT_EQ(report.batches, 2u);
}

TEST(Multicast, WindowBoundariesAreAligned) {
  // Sessions at t=119 and t=121 with a 120 s window land in different
  // aligned windows despite being 2 s apart.
  const auto trace = make_trace(uniform_catalog(1, 30),
                                {{119, 0, 0, 300}, {121, 1, 0, 300}},
                                /*user_count=*/2);
  const auto report =
      simulate_multicast(trace, config_with_window(120), kAllDay);
  EXPECT_EQ(report.batches, 2u);
}

TEST(Multicast, StreamOutlivesEarlyQuitters) {
  // The paper's attention-span point: one long member keeps the stream
  // alive; short members leaving early save nothing.
  const auto trace = make_trace(
      uniform_catalog(1, 30),
      {{0, 0, 0, 60}, {5, 1, 0, 60}, {10, 2, 0, 1800}}, /*user_count=*/3);
  const auto report =
      simulate_multicast(trace, config_with_window(60), kAllDay);
  EXPECT_EQ(report.batches, 1u);
  // Stream runs [0, 1810).
  EXPECT_NEAR(report.server_bits, 8e6 * 1810, 1.0);
  // Unicast would have cost only 60+60+1800 = 1920 s of streaming; the
  // batching saving here is marginal despite a 3-member tree.
  EXPECT_NEAR(report.unicast_bits, 8e6 * 1920, 1.0);
}

TEST(Multicast, BiggerWindowsNeverIncreaseLoad) {
  const auto trace =
      trace::generate_power_info_like(test::small_workload(2));
  double previous = -1.0;
  for (const std::int64_t window : {0, 60, 300, 1800}) {
    const auto report =
        simulate_multicast(trace, config_with_window(window), kAllDay);
    if (previous >= 0.0) {
      EXPECT_LE(report.server_bits, previous * 1.0001);
    }
    previous = report.server_bits;
  }
}

TEST(Multicast, MeanBatchSizeGrowsWithWindow) {
  const auto trace =
      trace::generate_power_info_like(test::small_workload(2));
  const auto narrow =
      simulate_multicast(trace, config_with_window(30), kAllDay);
  const auto wide =
      simulate_multicast(trace, config_with_window(1800), kAllDay);
  EXPECT_GT(wide.mean_batch_size(), narrow.mean_batch_size());
}

TEST(Multicast, SkewKeepsBatchesSmall) {
  // The paper's core claim: at realistic windows the mean batch stays near
  // one session because most programs see a trickle of requests.
  const auto trace =
      trace::generate_power_info_like(test::small_workload(3));
  const auto report =
      simulate_multicast(trace, config_with_window(120), kAllDay);
  EXPECT_LT(report.mean_batch_size(), 2.0);
}

TEST(Multicast, WarmupFilterOnlyAffectsPeakStats) {
  const auto trace =
      trace::generate_power_info_like(test::small_workload(3));
  const auto all = simulate_multicast(trace, config_with_window(120),
                                      sim::HourWindow{19, 22});
  const auto filtered = simulate_multicast(trace, config_with_window(120),
                                           sim::HourWindow{19, 22},
                                           sim::SimTime::days(1));
  EXPECT_EQ(all.batches, filtered.batches);
  EXPECT_DOUBLE_EQ(all.server_bits, filtered.server_bits);
  EXPECT_LT(filtered.server_peak.sample_count, all.server_peak.sample_count);
}

}  // namespace
}  // namespace vodcache::core
