// Quickstart: generate a PowerInfo-like workload, deploy the cooperative
// cache over an HFC topology, replay the trace, and print the numbers the
// paper cares about.
//
// Usage: quickstart [days] [neighborhood_size] [per_peer_GB]
#include <cstdlib>
#include <iostream>

#include "analysis/load_analysis.hpp"
#include "core/vod_system.hpp"
#include "example_args.hpp"
#include "trace/generator.hpp"

using namespace vodcache;

namespace {
constexpr std::string_view kUsage = "[days] [neighborhood_size] [per_peer_GB]";
}

int main(int argc, char** argv) {
  using examples::positive_int_arg;

  trace::GeneratorConfig workload;
  workload.days = positive_int_arg(argc, argv, 1, 14, "days", kUsage);

  core::SystemConfig system;
  const int neighborhood =
      positive_int_arg(argc, argv, 2, 1000, "neighborhood_size", kUsage);
  const int per_peer_gb =
      positive_int_arg(argc, argv, 3, 10, "per_peer_GB", kUsage);
  examples::require_capacity_fits(argv, kUsage, per_peer_gb, neighborhood);
  system.neighborhood_size = static_cast<std::uint32_t>(neighborhood);
  system.per_peer_storage = DataSize::gigabytes(per_peer_gb);
  system.strategy.kind = core::StrategyKind::Lfu;

  std::cout << "Generating " << workload.days << "-day workload ("
            << workload.user_count << " users, " << workload.program_count
            << " programs)...\n";
  const trace::Trace trace = trace::generate_power_info_like(workload);
  std::cout << "  " << trace.session_count() << " sessions\n";

  // The no-cache baseline: server load equals raw demand.  Measured over
  // the same post-warmup window as the cached run for a fair comparison.
  const auto demand = analysis::demand_peak(trace, system.stream_rate,
                                            system.peak_window, system.warmup);
  std::cout << "No cache: peak server load " << demand.mean.gbps()
            << " Gb/s (paper: ~17 Gb/s)\n";

  std::cout << "Simulating " << core::to_string(system.strategy.kind)
            << " cache: " << system.neighborhood_size << " peers x "
            << system.per_peer_storage.as_gigabytes() << " GB = "
            << system.neighborhood_cache_capacity().as_terabytes()
            << " TB per neighborhood...\n";
  core::VodSystem vod(trace, system);
  const auto report = vod.run();

  std::cout << report.to_string();
  std::cout << "Server-load reduction vs no cache: "
            << 100.0 * report.reduction_vs(demand.mean)
            << "% (paper: 88% at 10 TB)\n";
  return 0;
}
