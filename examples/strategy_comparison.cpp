// Strategy comparison on a custom workload: every replacement strategy the
// library ships (None/LRU/LFU/Oracle/GlobalLFU with lags), side by side.
//
// Usage: strategy_comparison [days] [neighborhood_size] [per_peer_GB]
#include <cstdlib>
#include <iostream>

#include "analysis/load_analysis.hpp"
#include "analysis/table.hpp"
#include "core/vod_system.hpp"
#include "example_args.hpp"
#include "trace/generator.hpp"

using namespace vodcache;

namespace {
constexpr std::string_view kUsage = "[days] [neighborhood_size] [per_peer_GB]";
}

int main(int argc, char** argv) {
  using examples::positive_int_arg;

  trace::GeneratorConfig workload;
  workload.days = positive_int_arg(argc, argv, 1, 14, "days", kUsage);

  core::SystemConfig base;
  const int neighborhood =
      positive_int_arg(argc, argv, 2, 500, "neighborhood_size", kUsage);
  const int per_peer_gb =
      positive_int_arg(argc, argv, 3, 4, "per_peer_GB", kUsage);
  examples::require_capacity_fits(argv, kUsage, per_peer_gb, neighborhood);
  base.neighborhood_size = static_cast<std::uint32_t>(neighborhood);
  base.per_peer_storage = DataSize::gigabytes(per_peer_gb);
  base.strategy.lfu_history = sim::SimTime::hours(72);

  std::cout << "Comparing strategies: " << base.neighborhood_size
            << "-peer neighborhoods, "
            << base.per_peer_storage.as_gigabytes() << " GB/peer ("
            << base.neighborhood_cache_capacity().as_terabytes()
            << " TB neighborhood cache), " << workload.days << " days\n\n";

  const auto trace = trace::generate_power_info_like(workload);
  const auto demand = analysis::demand_peak(trace, base.stream_rate,
                                            base.peak_window, base.warmup);

  struct Variant {
    const char* label;
    core::StrategyKind kind;
    sim::SimTime lag;
  };
  const Variant variants[] = {
      {"no cache", core::StrategyKind::None, {}},
      {"LRU", core::StrategyKind::Lru, {}},
      {"LFU (72h history)", core::StrategyKind::Lfu, {}},
      {"GlobalLFU (live)", core::StrategyKind::GlobalLfu, {}},
      {"GlobalLFU (30min lag)", core::StrategyKind::GlobalLfu,
       sim::SimTime::minutes(30)},
      {"GlobalLFU (2h lag)", core::StrategyKind::GlobalLfu,
       sim::SimTime::hours(2)},
      {"Oracle (3-day lookahead)", core::StrategyKind::Oracle, {}},
      {"GreedyDual (length-aware)", core::StrategyKind::GreedyDual, {}},
  };

  analysis::Table table({"strategy", "peak Gb/s", "reduction", "hit ratio",
                         "evictions"});
  for (const auto& variant : variants) {
    auto config = base;
    config.strategy.kind = variant.kind;
    config.strategy.global_lag = variant.lag;
    core::VodSystem system(trace, config);
    const auto report = system.run();
    table.add_row(
        {variant.label,
         analysis::Table::num(report.server_peak.mean.gbps(), 2),
         analysis::Table::num(100.0 * report.reduction_vs(demand.mean), 1) +
             "%",
         analysis::Table::num(report.hit_ratio(), 3),
         std::to_string(report.evictions)});
  }
  table.print(std::cout);

  std::cout << "\nExpected ordering (paper section VI-A): Oracle best; LFU "
               "at least as good as LRU;\nglobal popularity data a small "
               "further gain, degrading gracefully with batching lag.\n";
  return 0;
}
