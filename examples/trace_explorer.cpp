// Trace explorer: generate (or load) a workload and print the analyses the
// paper builds its design argument on — popularity skew, session-length
// behaviour, program-length deduction, diurnal load, release decay.
//
// Usage: trace_explorer [days]            (generate a synthetic trace)
//        trace_explorer --load <file>     (analyze a vodcache-trace CSV)
//
// The CSV path makes the whole pipeline runnable on a real trace (e.g. a
// converted PowerInfo dump) without recompiling.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "analysis/load_analysis.hpp"
#include "analysis/popularity_analysis.hpp"
#include "analysis/session_analysis.hpp"
#include "analysis/table.hpp"
#include "example_args.hpp"
#include "trace/csv_io.hpp"
#include "trace/generator.hpp"

using namespace vodcache;

namespace {
constexpr std::string_view kUsage = "[days] | --load <file>";
}

int main(int argc, char** argv) {
  trace::Trace trace;
  if (argc > 1 && std::strcmp(argv[1], "--load") == 0) {
    if (argc < 3) {
      examples::usage_error(argv[0], kUsage, "--load needs a file argument");
    }
    std::cout << "Loading trace from " << argv[2] << "...\n";
    try {
      trace = trace::read_csv_file(argv[2]);
    } catch (const std::exception& error) {
      std::cerr << argv[0] << ": " << error.what() << '\n';
      return 1;
    }
  } else {
    trace::GeneratorConfig config;
    config.days = examples::positive_int_arg(argc, argv, 1, 14, "days", kUsage);
    std::cout << "Generating " << config.days << "-day synthetic trace...\n";
    trace = trace::generate_power_info_like(config);
  }

  std::cout << "\n--- overview ---------------------------------------\n"
            << "users:    " << trace.user_count() << '\n'
            << "programs: " << trace.catalog().size() << '\n'
            << "sessions: " << trace.session_count() << '\n'
            << "horizon:  " << trace.horizon().days_f() << " days\n"
            << "catalog footprint at 8.06 Mb/s: "
            << analysis::Table::num(
                   trace.catalog()
                       .total_size(DataRate::megabits_per_second(8.06))
                       .as_terabytes(),
                   1)
            << " TB\n";

  // Popularity skew (the paper's anti-multicast argument, figure 2).
  const auto ranking = analysis::rank_by_sessions(trace);
  std::cout << "\n--- popularity skew --------------------------------\n";
  analysis::Table skew({"quantile", "program", "total sessions"});
  for (const double q : {1.0, 0.999, 0.99, 0.95, 0.5}) {
    const auto program = analysis::quantile_program(ranking, q);
    std::uint64_t sessions = 0;
    for (const auto& r : ranking) {
      if (r.program == program) sessions = r.sessions;
    }
    skew.add_row({analysis::Table::num(100 * q, 1) + "%",
                  std::to_string(program.value()), std::to_string(sessions)});
  }
  skew.print(std::cout);

  // Session lengths (figures 3/6) + automated program-length deduction.
  std::cout << "\n--- session lengths --------------------------------\n";
  const auto all = analysis::all_session_lengths_seconds(trace);
  const analysis::Ecdf ecdf(all);
  std::cout << "median session: "
            << analysis::Table::num(ecdf.quantile(0.5) / 60.0, 1)
            << " min; under 8 min: "
            << analysis::Table::num(100.0 * ecdf.at(8 * 60.0), 1) << "%\n";

  const auto top = ranking.front().program;
  if (const auto estimate = analysis::estimate_program_length(trace, top)) {
    std::cout << "top program: deduced length "
              << analysis::Table::num(estimate->seconds / 60.0, 1)
              << " min (completion spike "
              << analysis::Table::num(100.0 * estimate->completion, 1)
              << "% of sessions)";
    if (trace.catalog().length(top) > sim::SimTime{}) {
      std::cout << ", true length "
                << trace.catalog().length(top).minutes_f() << " min";
    }
    std::cout << '\n';
  }

  // Diurnal demand (figure 7).
  std::cout << "\n--- demand by hour of day --------------------------\n";
  const auto profile = analysis::demand_hourly_profile(
      trace, DataRate::megabits_per_second(8.06));
  for (int h = 0; h < 24; ++h) {
    std::cout << (h < 10 ? " " : "") << h << "h "
              << std::string(static_cast<std::size_t>(profile[h].gbps() * 2.5),
                             '#')
              << ' ' << analysis::Table::num(profile[h].gbps(), 1) << "\n";
  }

  // Release decay (figure 12).
  const auto decay = analysis::popularity_by_age(trace, 8, 50);
  if (decay[0] > 0.0) {
    std::cout << "\n--- popularity decay after release -----------------\n"
              << "day 0: " << analysis::Table::num(decay[0], 1)
              << " sessions/day; day 7: " << analysis::Table::num(decay[7], 1)
              << " (" << analysis::Table::num(
                     100.0 * (1.0 - decay[7] / decay[0]), 0)
              << "% drop; paper: ~80%)\n";
  }
  return 0;
}
