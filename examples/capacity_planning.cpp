// Capacity planning: the question a cable operator actually asks.
//
// "My central servers can sustain S Gb/s.  How much set-top storage do I
// need per subscriber, at my neighborhood sizes, to stay under that?"
//
// Sweeps per-peer storage until the peak server load fits the budget, then
// prints the sizing table including coax feasibility margins.
//
// Usage: capacity_planning [server_budget_gbps] [neighborhood_size] [days]
#include <cstdlib>
#include <iostream>
#include <iterator>

#include "analysis/load_analysis.hpp"
#include "analysis/table.hpp"
#include "core/vod_system.hpp"
#include "example_args.hpp"
#include "trace/generator.hpp"

using namespace vodcache;

namespace {
constexpr std::string_view kUsage =
    "[server_budget_gbps] [neighborhood_size] [days]";
}

int main(int argc, char** argv) {
  using examples::positive_double_arg;
  using examples::positive_int_arg;

  const double budget_gbps =
      positive_double_arg(argc, argv, 1, 5.0, "server_budget_gbps", kUsage);
  const std::uint32_t neighborhood = static_cast<std::uint32_t>(
      positive_int_arg(argc, argv, 2, 1000, "neighborhood_size", kUsage));
  const int days = positive_int_arg(argc, argv, 3, 14, "days", kUsage);
  // The per-peer sizes swept below; the largest one times the neighborhood
  // size must fit the int64 capacity type.
  constexpr int kSweepGb[] = {1, 2, 4, 6, 8, 10, 15, 20};
  examples::require_capacity_fits(argv, kUsage, *std::rbegin(kSweepGb),
                                  static_cast<int>(neighborhood));

  std::cout << "Capacity planning: keep peak central-server load under "
            << budget_gbps << " Gb/s with " << neighborhood
            << "-subscriber neighborhoods\n\n";

  trace::GeneratorConfig workload;
  workload.days = days;
  const auto trace = trace::generate_power_info_like(workload);

  core::SystemConfig config;
  config.neighborhood_size = neighborhood;
  config.strategy.kind = core::StrategyKind::Lfu;

  const auto demand = analysis::demand_peak(trace, config.stream_rate,
                                            config.peak_window, config.warmup);
  std::cout << "no-cache peak demand: " << demand.mean.gbps() << " Gb/s\n\n";

  analysis::Table table({"per-peer GB", "neighborhood cache", "peak Gb/s",
                         "p95 Gb/s", "coax p95 Mb/s", "fits budget"});

  double chosen = -1.0;
  for (const int gb : kSweepGb) {
    config.per_peer_storage = DataSize::gigabytes(gb);
    core::VodSystem system(trace, config);
    const auto report = system.run();
    const bool fits = report.server_peak.mean.gbps() <= budget_gbps;
    if (fits && chosen < 0) chosen = gb;
    table.add_row(
        {std::to_string(gb),
         analysis::Table::num(config.neighborhood_cache_capacity().as_terabytes(),
                              1) +
             " TB",
         analysis::Table::num(report.server_peak.mean.gbps(), 2),
         analysis::Table::num(report.server_peak.q95.gbps(), 2),
         analysis::Table::num(report.coax_peak_pooled.q95.mbps(), 0),
         fits ? "yes" : "no"});
    // Stop early once the budget holds with margin (mean and p95).
    if (report.server_peak.q95.gbps() <= budget_gbps) break;
  }
  table.print(std::cout);

  if (chosen > 0) {
    std::cout << "\n=> " << chosen
              << " GB per set-top box meets the budget (paper section V-C "
                 "considers up to 10 GB\nof a ~40 GB consumer disk "
                 "realistic).\n";
  } else {
    std::cout << "\n=> no swept size met the budget; raise per-peer storage "
                 "or lower expectations.\n";
  }
  return 0;
}
