// Strict positional-argument parsing shared by the example programs.
//
// Examples are the first thing a new user runs; a typo'd argument must print
// a usage line and exit(2), not trip a library precondition and abort.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "util/parse.hpp"
#include "util/units.hpp"

namespace vodcache::examples {

[[noreturn]] inline void usage_error(std::string_view program,
                                     std::string_view usage,
                                     std::string_view detail) {
  std::cerr << program << ": " << detail << "\nusage: " << program << ' '
            << usage << '\n';
  std::exit(2);
}

// Parses argv[index] as a positive integer in [1, max_value], or returns
// `fallback` when the argument is absent.  Rejects trailing garbage ("10x"),
// overflow, non-numbers, and out-of-range values.  The bound matters:
// e.g. a gigabyte count above ~1e9 would overflow the int64 bit count in
// DataSize::gigabytes and abort on a library precondition.
inline int positive_int_arg(int argc, char** argv, int index, int fallback,
                            std::string_view name, std::string_view usage,
                            int max_value = 1'000'000'000) {
  if (index >= argc) return fallback;
  const std::string_view text = argv[index];
  const auto value = util::parse_strict<int>(text);
  if (!value || *value <= 0 || *value > max_value) {
    usage_error(argv[0], usage,
                std::string(name) + " must be an integer in [1, " +
                    std::to_string(max_value) + "], got '" + std::string(text) +
                    "'");
  }
  return *value;
}

// Parses argv[index] as a strictly positive finite double, or returns
// `fallback` when the argument is absent.
inline double positive_double_arg(int argc, char** argv, int index,
                                  double fallback, std::string_view name,
                                  std::string_view usage) {
  if (index >= argc) return fallback;
  const std::string_view text = argv[index];
  const auto value = util::parse_strict<double>(text);
  if (!value || *value <= 0.0) {
    usage_error(argv[0], usage,
                std::string(name) + " must be a positive number, got '" +
                    std::string(text) + "'");
  }
  return *value;
}

// Each option can be individually in range while their product still
// overflows the int64 bit count of the total neighborhood cache.  Reject
// that combination.
inline void require_capacity_fits(char** argv, std::string_view usage,
                                  int per_peer_gb, int neighborhood_size) {
  if (!DataSize::gigabytes(per_peer_gb).multipliable_by(neighborhood_size)) {
    usage_error(argv[0], usage,
                "per_peer_GB x neighborhood_size overflows the total "
                "neighborhood capacity");
  }
}

}  // namespace vodcache::examples
