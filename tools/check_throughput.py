#!/usr/bin/env python3
"""Throughput ratchet: fail CI when the engine gets meaningfully slower.

Compares a freshly measured BENCH_scaling.json against the committed
baseline (baselines/BENCH_scaling.json) and exits nonzero when the
single-thread sessions_per_sec regresses by more than the tolerance band.
Like the coverage ratchet, the baseline only moves forward: re-record it
(run `VODCACHE_SCALING_ONLY=1 bench_fig15_table16_scaling` and commit the
output) when a PR makes the engine faster, never to make a regression pass.

Two rows are ratcheted: threads=1 measures the serial hot path itself,
and threads=8 measures the job-graph executor end to end (graph build,
steal traffic, chunk hand-off) — a scheduler regression shows up there
while leaving the single-thread row untouched.  The in-between rows fold
in core-count noise on small runners, so they are printed for context but
only warn.  The band is deliberately wide (default 10%) to absorb
runner-to-runner variance; an architectural regression (a hash map back
in the segment path, per-event heap churn, a serialized executor) costs
far more than that.

Usage: check_throughput.py <measured.json> <baseline.json> [tolerance]
  tolerance: allowed fractional regression, default 0.10; also settable
  via VODCACHE_RATCHET_TOLERANCE.

Stdlib only — this must run on a bare CI runner.
"""

import json
import os
import sys


def load_runs(path):
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    runs = {run["threads"]: run for run in data.get("runs", [])}
    if not runs:
        sys.exit(f"FAIL: {path} has no runs[]")
    for threads, run in runs.items():
        if "sessions_per_sec" not in run:
            sys.exit(f"FAIL: {path} run threads={threads} lacks sessions_per_sec")
    return data, runs


def main(argv):
    if len(argv) < 3:
        sys.exit(__doc__)
    measured_path, baseline_path = argv[1], argv[2]
    tolerance = float(
        argv[3]
        if len(argv) > 3
        else os.environ.get("VODCACHE_RATCHET_TOLERANCE", "0.10")
    )

    measured_data, measured = load_runs(measured_path)
    baseline_data, baseline = load_runs(baseline_path)

    # The two files must describe the same workload, or the ratio is
    # meaningless.
    for key in ("days", "users"):
        if measured_data.get(key) != baseline_data.get(key):
            sys.exit(
                f"FAIL: workload mismatch: measured {key}="
                f"{measured_data.get(key)} vs baseline {baseline_data.get(key)}"
            )

    failed = False
    for threads in sorted(baseline.keys()):
        if threads not in measured:
            print(f"WARN: measured file lacks threads={threads} row")
            continue
        base = baseline[threads]["sessions_per_sec"]
        new = measured[threads]["sessions_per_sec"]
        ratio = new / base if base > 0 else float("inf")
        verdict = "ok"
        if ratio < 1.0 - tolerance:
            if threads in (1, 8):
                verdict = "FAIL"
                failed = True
            else:
                verdict = "warn (not ratcheted)"
        print(
            f"threads={threads}: {new:,.0f} vs baseline {base:,.0f} "
            f"sessions/s ({ratio:.2%}) {verdict}"
        )

    if failed:
        print(
            f"FAIL: ratcheted throughput row regressed more than "
            f"{tolerance:.0%} against {baseline_path}"
        )
        return 1
    print("throughput ratchet holds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
