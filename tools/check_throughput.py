#!/usr/bin/env python3
"""Throughput ratchet: fail CI when the engine gets meaningfully slower.

Compares a freshly measured bench JSON against its committed baseline
(baselines/<same name>) and exits nonzero when a ratcheted rate regresses
by more than the tolerance band.  Like the coverage ratchet, the baseline
only moves forward: re-record it (run the bench and commit the output)
when a PR makes the engine faster, never to make a regression pass.

Two file shapes are understood, keyed off their contents:

* BENCH_scaling.json — a runs[] array.  Two rows are ratcheted:
  threads=1 measures the serial hot path itself, and threads=8 measures
  the job-graph executor end to end (graph build, steal traffic, chunk
  hand-off) — a scheduler regression shows up there while leaving the
  single-thread row untouched.  The in-between rows fold in core-count
  noise on small runners, so they are printed for context but only warn.

* BENCH_policies.json — a single shadow_sessions_per_sec rate: the
  session throughput of the pass that carries every (scorer x admission)
  pair as a shadow cache.  This is the whole point of the shadow matrix
  (one pass instead of one per cell), so the one rate is ratcheted
  directly.

The band is deliberately wide (default 10%) to absorb runner-to-runner
variance; an architectural regression (a hash map back in the segment
path, per-event heap churn, a serialized executor, a shadow bank gone
quadratic) costs far more than that.

Usage: check_throughput.py <measured.json> <baseline.json> [tolerance]
  tolerance: allowed fractional regression, default 0.10; also settable
  via VODCACHE_RATCHET_TOLERANCE.

Stdlib only — this must run on a bare CI runner.
"""

import json
import os
import sys


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def check_workload(measured_data, baseline_data, keys):
    """The two files must describe the same workload, or the ratio is
    meaningless."""
    for key in keys:
        if measured_data.get(key) != baseline_data.get(key):
            sys.exit(
                f"FAIL: workload mismatch: measured {key}="
                f"{measured_data.get(key)} vs baseline {baseline_data.get(key)}"
            )


def ratchet_runs(measured_data, baseline_data, tolerance):
    """BENCH_scaling.json shape: per-thread runs[] rows."""

    def rows(data, path):
        runs = {run["threads"]: run for run in data.get("runs", [])}
        for threads, run in runs.items():
            if "sessions_per_sec" not in run:
                sys.exit(
                    f"FAIL: {path} run threads={threads} lacks sessions_per_sec"
                )
        return runs

    measured = rows(measured_data, "measured")
    baseline = rows(baseline_data, "baseline")
    check_workload(measured_data, baseline_data, ("days", "users"))

    failed = False
    for threads in sorted(baseline.keys()):
        if threads not in measured:
            print(f"WARN: measured file lacks threads={threads} row")
            continue
        base = baseline[threads]["sessions_per_sec"]
        new = measured[threads]["sessions_per_sec"]
        ratio = new / base if base > 0 else float("inf")
        verdict = "ok"
        if ratio < 1.0 - tolerance:
            if threads in (1, 8):
                verdict = "FAIL"
                failed = True
            else:
                verdict = "warn (not ratcheted)"
        print(
            f"threads={threads}: {new:,.0f} vs baseline {base:,.0f} "
            f"sessions/s ({ratio:.2%}) {verdict}"
        )
    return failed


def ratchet_shadow(measured_data, baseline_data, tolerance):
    """BENCH_policies.json shape: one shadow-pass rate."""
    check_workload(measured_data, baseline_data, ("days", "users"))
    base = baseline_data["shadow_sessions_per_sec"]
    new = measured_data.get("shadow_sessions_per_sec")
    if new is None:
        sys.exit("FAIL: measured file lacks shadow_sessions_per_sec")
    ratio = new / base if base > 0 else float("inf")
    failed = ratio < 1.0 - tolerance
    print(
        f"shadow matrix pass: {new:,.0f} vs baseline {base:,.0f} "
        f"sessions/s ({ratio:.2%}) {'FAIL' if failed else 'ok'}"
    )
    return failed


def main(argv):
    if len(argv) < 3:
        sys.exit(__doc__)
    measured_path, baseline_path = argv[1], argv[2]
    tolerance = float(
        argv[3]
        if len(argv) > 3
        else os.environ.get("VODCACHE_RATCHET_TOLERANCE", "0.10")
    )

    measured_data = load(measured_path)
    baseline_data = load(baseline_path)

    if "runs" in baseline_data:
        failed = ratchet_runs(measured_data, baseline_data, tolerance)
    elif "shadow_sessions_per_sec" in baseline_data:
        failed = ratchet_shadow(measured_data, baseline_data, tolerance)
    else:
        sys.exit(f"FAIL: {baseline_path} has neither runs[] nor "
                 "shadow_sessions_per_sec")

    if failed:
        print(
            f"FAIL: ratcheted throughput regressed more than "
            f"{tolerance:.0%} against {baseline_path}"
        )
        return 1
    print("throughput ratchet holds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
