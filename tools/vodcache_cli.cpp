// vodcache — command-line HFC VoD deployment planner.
//
// Generates (or loads) a workload, deploys the cooperative cache, replays
// the trace, and reports what the central servers, headend fiber feeds,
// and neighborhood coax must sustain.
//
//   vodcache run   [options]        simulate and report
//   vodcache gen   [options] FILE   write a synthetic trace as CSV
//   vodcache demand [options]       no-cache demand profile only (fast)
//
// The workload is streamed: sessions are generated (or read) lazily and
// consumed incrementally, so memory stays flat in the horizon and the user
// count — a million-user multi-day run fits in commodity RAM.  `--materialize`
// forces the old buffer-everything path; its report is byte-identical.
//
// Common options:
//   --days N              workload horizon in days            [21]
//   --users N             subscriber count                    [41698]
//   --programs N          catalog size                        [8278]
//   --seed N              workload seed                       [20070625]
//   --trace FILE          load trace CSV instead of generating
//   --scenario FILE       load a declarative scenario (workload + adaptors
//                         + failure schedule; see --list-scenarios and
//                         examples/scenarios/).  Applied when parsed:
//                         later options override the file's settings.
//   --list-scenarios      print every scenario file section the engine
//                         understands (the scenario registry is the single
//                         source of truth for these names), then exit
//   --scale-pop N         population x N (paper sec. V-A jittered copies)
//   --scale-cat N         catalog x N (paper sec. V-A random remap)
//   --materialize         buffer the whole trace in memory (cross-check
//                         path; the streamed report is byte-identical)
// System options (run):
//   --neighborhood N      subscribers per neighborhood        [1000]
//   --per-peer-gb N       storage contribution per set-top    [10]
//   --strategy S          eviction scorer (see --list-strategies)  [lfu]
//   --admission-policy P  admission gate (see --list-strategies)   [always]
//   --probation-hours N   second-hit probation window         [24]
//   --headroom F          coax-headroom admission fraction    [0.9]
//   --history-hours N     LFU/global history window           [72]
//   --lag-minutes N       global popularity batching lag      [0]
//   --segment-admission   charge only stored bytes (ablation)
//   --list-strategies     print every registered scorer and admission
//                         policy (the registry is the single source of
//                         truth for these names), then exit
//   --shadow-matrix       shadow every (scorer x admission) pair against
//                         the primary's replay in the same single pass
//   --policy-switch       let each neighborhood promote a shadow pair
//                         that out-hits its primary for k consecutive
//                         windows (warm switch; report gains
//                         policy_switches, drops shadow_matrix)
//   --switch-window N     policy-switch comparison window, hours  [6]
//   --switch-k N          consecutive windows a pair must win     [3]
//   --replicate           replicate stream-saturated segments
// Tier options (run; any --hub-* flag adds a regional hub tier between
// the neighborhoods and the origin):
//   --hub-capacity-gb N   pooled storage per hub node         [0]
//   --hub-fan-in N        neighborhoods per hub node          [8]
//   --hub-link-gbps F     hub refresh uplink cap, 0 = none    [0]
//   --hub-cost-per-gb F   transfer cost per GB served by hub  [0.01]
//   --origin-cost-per-gb F  transfer cost per GB from origin  [0.05]
//   --prefetch P          hub prior-storing policy (see --list-tiers)
//   --prefetch-refresh-hours N  prefetch plan rotation period [24]
//   --list-tiers          print every registered prefetch policy (the
//                         registry is the single source of truth for
//                         these names), then exit
//   --threads N           worker threads for the sharded replay;
//                         the report is bit-identical for any N  [1]
//   --warmup-days N       measurement warmup exclusion        [7]
//   --fail T F            wipe fraction F of peers at hour T (repeatable)
//   --json [FILE]         emit the full report as JSON
#include <algorithm>
#include <cstdint>
#include <optional>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/load_analysis.hpp"
#include "analysis/table.hpp"
#include "core/policy_registry.hpp"
#include "core/report_json.hpp"
#include "core/vod_system.hpp"
#include "scenario/scenario.hpp"
#include "trace/csv_io.hpp"
#include "trace/generator.hpp"
#include "trace/scaler.hpp"
#include "trace/session_source.hpp"
#include "util/parse.hpp"

namespace {

using namespace vodcache;

struct CliOptions {
  std::string command;
  trace::GeneratorConfig workload;
  core::SystemConfig system;
  std::optional<scenario::ScenarioSpec> scenario;
  std::string trace_path;
  std::uint32_t scale_pop = 1;
  std::uint32_t scale_cat = 1;
  bool materialize = false;
  std::string output_path;   // gen: trace CSV destination
  std::string json_path;     // run: "-" = stdout
  bool emit_json = false;
};

[[noreturn]] void usage(const char* message = nullptr) {
  if (message != nullptr) std::cerr << "vodcache: " << message << "\n\n";
  std::cerr <<
      "usage: vodcache run|gen|demand [options]  (see source header or "
      "README)\n";
  std::exit(message == nullptr ? 0 : 2);
}

// Option bounds shared with the scenario-file parser (one definition in
// util/parse.hpp, so the two surfaces cannot drift).
using util::kMaxDays;
using util::kMaxGigabytes;
using util::kMaxHours;
constexpr std::int64_t kMaxCount = util::kMaxIdCount;

// Strict numeric option parsing: malformed, overflowing, or out-of-range
// values are usage errors (exit 2), never library precondition aborts and
// never silent narrowing wraps.
std::int64_t parse_int(const std::string& text, const char* option,
                       std::int64_t min_value, std::int64_t max_value) {
  const auto value = util::parse_strict<std::int64_t>(text);
  if (!value || *value < min_value || *value > max_value) {
    usage((std::string(option) + " needs an integer in [" +
           std::to_string(min_value) + ", " + std::to_string(max_value) +
           "], got '" + text + "'")
              .c_str());
  }
  return *value;
}

double parse_double(const std::string& text, const char* option,
                    double min_value, double max_value) {
  const auto value = util::parse_strict<double>(text);
  if (!value || *value < min_value || *value > max_value) {
    usage((std::string(option) + " needs a number in [" +
           std::to_string(min_value) + ", " + std::to_string(max_value) +
           "], got '" + text + "'")
              .c_str());
  }
  return *value;
}

double parse_fraction(const std::string& text, const char* option) {
  const auto value = util::parse_strict<double>(text);
  if (!value || *value <= 0.0 || *value > 1.0) {
    usage((std::string(option) + " needs a fraction in (0, 1], got '" + text +
           "'")
              .c_str());
  }
  return *value;
}

// Both parsers read the policy registry, so the accepted names and the
// error text can never drift from what the engine actually instantiates.
core::StrategyKind parse_strategy(const std::string& name) {
  if (const auto* entry = core::find_scorer(name)) return entry->kind;
  usage(("unknown strategy (use " + core::scorer_keys() + ")").c_str());
}

core::AdmissionKind parse_admission(const std::string& name) {
  if (const auto* entry = core::find_admission(name)) return entry->kind;
  usage(("unknown admission policy (use " + core::admission_keys() + ")")
            .c_str());
}

core::PrefetchKind parse_prefetch(const std::string& name) {
  if (const auto* entry = core::find_prefetch(name)) return entry->kind;
  usage(("unknown prefetch policy (use " + core::prefetch_keys() + ")")
            .c_str());
}

[[noreturn]] void list_strategies() {
  analysis::Table scorers({"strategy", "report name", "what it does"});
  for (const auto& entry : core::scorer_registry()) {
    scorers.add_row({entry.key, entry.display, entry.summary});
  }
  std::cout << "eviction strategies (--strategy):\n";
  scorers.print(std::cout);

  analysis::Table admissions({"policy", "report name", "what it does"});
  for (const auto& entry : core::admission_registry()) {
    admissions.add_row({entry.key, entry.display, entry.summary});
  }
  std::cout << "\nadmission policies (--admission-policy):\n";
  admissions.print(std::cout);
  std::exit(0);
}

[[noreturn]] void list_tiers() {
  analysis::Table prefetches({"prefetch", "report name", "what it does"});
  for (const auto& entry : core::prefetch_registry()) {
    prefetches.add_row({entry.key, entry.display, entry.summary});
  }
  std::cout << "hub prefetch policies (--prefetch):\n";
  prefetches.print(std::cout);
  std::exit(0);
}

[[noreturn]] void list_scenarios() {
  analysis::Table sections({"section", "keys", "what it does"});
  for (const auto& entry : scenario::section_registry()) {
    sections.add_row({entry.key, entry.keys, entry.summary});
  }
  std::cout << "scenario file sections (--scenario; see "
               "examples/scenarios/*.scn):\n";
  sections.print(std::cout);
  std::exit(0);
}

CliOptions parse(int argc, char** argv) {
  if (argc < 2) usage("missing command");
  CliOptions options;
  options.command = argv[1];
  if (options.command == "--list-strategies") list_strategies();
  if (options.command == "--list-scenarios") list_scenarios();
  if (options.command == "--list-tiers") list_tiers();
  options.workload.days = 21;

  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage("missing value for option");
    return argv[++i];
  };

  // The hub tier any --hub-* flag configures, created on first use (a
  // scenario file's [tiers] hub, if one was loaded earlier, is reused so
  // later flags override the file, matching every other option).
  auto hub = [&]() -> hfc::TierLevelSpec& {
    if (options.system.tiers.empty()) {
      options.system.tiers.push_back(hfc::TierLevelSpec{});
    }
    return options.system.tiers.back();
  };

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--days") {
      options.workload.days = static_cast<int>(
          parse_int(need_value(i), "--days", 1, kMaxDays));
    } else if (arg == "--users") {
      options.workload.user_count = static_cast<std::uint32_t>(
          parse_int(need_value(i), "--users", 1, kMaxCount));
    } else if (arg == "--programs") {
      options.workload.program_count = static_cast<std::uint32_t>(
          parse_int(need_value(i), "--programs", 1, kMaxCount));
    } else if (arg == "--seed") {
      options.workload.seed = static_cast<std::uint64_t>(parse_int(
          need_value(i), "--seed", 0, std::numeric_limits<std::int64_t>::max()));
    } else if (arg == "--trace") {
      options.trace_path = need_value(i);
    } else if (arg == "--scenario") {
      if (options.scenario) usage("--scenario given twice");
      // Applied in option order: the file's settings override flags given
      // before it (only the keys the file actually sets — the current
      // workload seeds the parse, so the 21-day CLI default and earlier
      // flags survive), and any later flag overrides the file.
      try {
        options.scenario =
            scenario::load_scenario_file(need_value(i), options.workload);
      } catch (const std::exception& error) {
        usage(error.what());
      }
      options.workload = options.scenario->workload;
      scenario::apply_system(*options.scenario, options.system);
    } else if (arg == "--list-scenarios") {
      list_scenarios();
    } else if (arg == "--scale-pop") {
      options.scale_pop = static_cast<std::uint32_t>(
          parse_int(need_value(i), "--scale-pop", 1, 10'000));
    } else if (arg == "--scale-cat") {
      options.scale_cat = static_cast<std::uint32_t>(
          parse_int(need_value(i), "--scale-cat", 1, 10'000));
    } else if (arg == "--materialize") {
      options.materialize = true;
    } else if (arg == "--neighborhood") {
      options.system.neighborhood_size = static_cast<std::uint32_t>(
          parse_int(need_value(i), "--neighborhood", 1, kMaxCount));
    } else if (arg == "--per-peer-gb") {
      options.system.per_peer_storage = DataSize::gigabytes(
          parse_int(need_value(i), "--per-peer-gb", 1, kMaxGigabytes));
    } else if (arg == "--strategy") {
      options.system.strategy.kind = parse_strategy(need_value(i));
    } else if (arg == "--admission-policy") {
      options.system.admission_policy.kind = parse_admission(need_value(i));
    } else if (arg == "--probation-hours") {
      options.system.admission_policy.probation_window = sim::SimTime::hours(
          parse_int(need_value(i), "--probation-hours", 0, kMaxHours));
    } else if (arg == "--headroom") {
      options.system.admission_policy.headroom_fraction =
          parse_fraction(need_value(i), "--headroom");
    } else if (arg == "--list-strategies") {
      list_strategies();
    } else if (arg == "--history-hours") {
      options.system.strategy.lfu_history = sim::SimTime::hours(
          parse_int(need_value(i), "--history-hours", 0, kMaxHours));
    } else if (arg == "--lag-minutes") {
      options.system.strategy.global_lag = sim::SimTime::minutes(
          parse_int(need_value(i), "--lag-minutes", 0, kMaxHours * 60));
    } else if (arg == "--segment-admission") {
      options.system.admission = core::CacheAdmission::Segment;
    } else if (arg == "--hub-capacity-gb") {
      hub().capacity = DataSize::gigabytes(
          parse_int(need_value(i), "--hub-capacity-gb", 0, kMaxGigabytes));
    } else if (arg == "--hub-fan-in") {
      hub().fan_in = static_cast<std::uint32_t>(
          parse_int(need_value(i), "--hub-fan-in", 1, kMaxCount));
    } else if (arg == "--hub-link-gbps") {
      hub().uplink = DataRate::gigabits_per_second(
          parse_double(need_value(i), "--hub-link-gbps", 0.0, 1e6));
    } else if (arg == "--hub-cost-per-gb") {
      hub().cost_per_gb =
          parse_double(need_value(i), "--hub-cost-per-gb", 0.0, 1e6);
    } else if (arg == "--origin-cost-per-gb") {
      options.system.origin_cost_per_gb =
          parse_double(need_value(i), "--origin-cost-per-gb", 0.0, 1e6);
    } else if (arg == "--prefetch") {
      options.system.prefetch.kind = parse_prefetch(need_value(i));
    } else if (arg == "--prefetch-refresh-hours") {
      options.system.prefetch.refresh = sim::SimTime::hours(
          parse_int(need_value(i), "--prefetch-refresh-hours", 1, kMaxHours));
    } else if (arg == "--list-tiers") {
      list_tiers();
    } else if (arg == "--replicate") {
      options.system.replicate_on_busy = true;
    } else if (arg == "--shadow-matrix") {
      options.system.shadow_matrix = true;
    } else if (arg == "--policy-switch") {
      options.system.policy_switch = true;
    } else if (arg == "--switch-window") {
      options.system.switch_window = sim::SimTime::hours(
          parse_int(need_value(i), "--switch-window", 1, kMaxHours));
    } else if (arg == "--switch-k") {
      options.system.switch_windows_k = static_cast<int>(
          parse_int(need_value(i), "--switch-k", 1, 1000));
    } else if (arg == "--threads") {
      options.system.threads = static_cast<std::uint32_t>(
          parse_int(need_value(i), "--threads", 1, 4096));
    } else if (arg == "--warmup-days") {
      options.system.warmup = sim::SimTime::days(
          parse_int(need_value(i), "--warmup-days", 0, kMaxDays));
    } else if (arg == "--fail") {
      core::SystemConfig::PeerFailure failure;
      failure.time = sim::SimTime::hours(
          parse_int(need_value(i), "--fail", 0, kMaxHours));
      failure.fraction = parse_fraction(need_value(i), "--fail");
      options.system.peer_failures.push_back(failure);
    } else if (arg == "--json") {
      options.emit_json = true;
      // Optional value: a path, or an explicit "-" for stdout (also the
      // default when the next token is another option).
      if (i + 1 < argc &&
          (argv[i + 1][0] != '-' || std::strcmp(argv[i + 1], "-") == 0)) {
        options.json_path = argv[++i];
      } else {
        options.json_path = "-";
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else if (options.command == "gen" && options.output_path.empty() &&
               arg[0] != '-') {
      options.output_path = arg;
    } else {
      usage(("unknown option: " + arg).c_str());
    }
  }
  if (options.scenario && !options.trace_path.empty()) {
    usage("--scenario defines its own generated workload; it cannot combine "
          "with --trace");
  }
  // Scaling adaptors on top would quietly change the declared workload:
  // population copies land outside the skew adaptor's topology and random
  // catalog remaps dissolve flash-crowd/release-wave targets.  Scale a
  // scenario inside the file (users/programs keys) instead.
  if (options.scenario && (options.scale_pop > 1 || options.scale_cat > 1)) {
    usage("--scenario cannot combine with --scale-pop/--scale-cat; set the "
          "scenario file's [workload] users/programs instead");
  }
  // Each option is individually bounded, but their product is the int64 bit
  // count of a neighborhood cache — reject combinations that overflow it.
  if (!options.system.per_peer_storage.multipliable_by(
          options.system.neighborhood_size)) {
    usage("--per-peer-gb x --neighborhood overflows total capacity");
  }
  // Same product guard one tier up: a hub pools fan-in neighborhoods'
  // worth of demand against its capacity.
  for (const auto& tier : options.system.tiers) {
    if (!tier.capacity.multipliable_by(tier.fan_in)) {
      usage(("--hub-capacity-gb x --hub-fan-in overflows total " +
             tier.name + " capacity")
                .c_str());
    }
  }
  // Generated workloads: the scaled id spaces are known before the (costly)
  // source is built — reject overflow here.  CSV workloads re-check after
  // the file's header is read (open_source).
  if (options.trace_path.empty()) {
    if (static_cast<std::uint64_t>(options.workload.user_count) *
            options.scale_pop >
        0xFFFFFFFFULL) {
      usage("--users x --scale-pop overflows the 32-bit user id space");
    }
    if (static_cast<std::uint64_t>(options.workload.program_count) *
            options.scale_cat >
        0xFFFFFFFFULL) {
      usage("--programs x --scale-cat overflows the 32-bit program id space");
    }
  }
  return options;
}

// The workload as a lazy source chain: generator or CSV file at the base,
// optionally wrapped by the section V-A scaling adaptors.  `parts` keeps
// every link alive (unique_ptrs, so the pointees — which the links point
// into — stay put when the chain moves); `tip()` is the composed workload.
// With `--materialize`, the workload is held as an in-memory Trace and
// exposed through a TraceSource — byte-identical results, RAM
// proportional to the session count (the cross-check path).
struct SourceChain {
  std::vector<std::unique_ptr<trace::SessionSource>> parts;
  std::vector<std::unique_ptr<trace::Trace>> traces;  // TraceSource backing

  [[nodiscard]] const trace::SessionSource& tip() const {
    return *parts.back();
  }

  void materialize_tip() {
    traces.push_back(
        std::make_unique<trace::Trace>(trace::materialize(tip())));
    parts.push_back(std::make_unique<trace::TraceSource>(*traces.back()));
  }
};

SourceChain open_source(const CliOptions& options) {
  SourceChain chain;
  if (!options.trace_path.empty()) {
    std::cerr << "loading trace " << options.trace_path << "...\n";
    if (options.materialize) {
      // The materialized loader tolerates what a streaming pass cannot
      // (unsorted sessions, meta after sessions): it buffers and re-sorts.
      chain.traces.push_back(std::make_unique<trace::Trace>(
          trace::read_csv_file(options.trace_path)));
      chain.parts.push_back(
          std::make_unique<trace::TraceSource>(*chain.traces.back()));
    } else {
      chain.parts.push_back(
          std::make_unique<trace::CsvSource>(options.trace_path));
    }
  } else {
    std::cerr << "generating " << options.workload.days << "-day workload ("
              << options.workload.user_count << " users, "
              << options.workload.program_count << " programs)...\n";
    chain.parts.push_back(
        std::make_unique<trace::GeneratorSource>(options.workload));
    if (options.scenario) {
      std::cerr << "applying scenario '" << options.scenario->name << "'";
      if (!options.scenario->summary.empty()) {
        std::cerr << " (" << options.scenario->summary << ")";
      }
      std::cerr << "...\n";
      // Validate against the *final* workload — later CLI flags may have
      // overridden the file's days/users/programs — and the final
      // neighborhood sizing (the skew adaptor replays the placement).
      auto spec = *options.scenario;
      spec.workload = options.workload;
      scenario::stack_adaptors(chain.parts, spec,
                               options.system.neighborhood_size);
    }
  }
  const bool scaled = options.scale_pop > 1 || options.scale_cat > 1;
  if (options.scale_pop > 1) {
    if (static_cast<std::uint64_t>(chain.tip().user_count()) *
            options.scale_pop >
        0xFFFFFFFFULL) {
      usage("--scale-pop overflows the 32-bit user id space");
    }
    const auto& base = chain.tip();
    chain.parts.push_back(std::make_unique<trace::PopulationScaledSource>(
        base, options.scale_pop));
  }
  if (options.scale_cat > 1) {
    if (static_cast<std::uint64_t>(chain.tip().catalog().size()) *
            options.scale_cat >
        0xFFFFFFFFULL) {
      usage("--scale-cat overflows the 32-bit program id space");
    }
    const auto& base = chain.tip();
    chain.parts.push_back(std::make_unique<trace::CatalogScaledSource>(
        base, options.scale_cat));
  }
  // A loaded --materialize trace is already in memory; only re-materialize
  // when adaptors (or the generator) sit on top.
  if (options.materialize && (scaled || options.trace_path.empty())) {
    std::cerr << "materializing " << (scaled ? "scaled " : "")
              << "trace in memory...\n";
    chain.materialize_tip();
  }
  return chain;
}

int cmd_gen(const CliOptions& options) {
  if (options.output_path.empty()) usage("gen needs an output file");
  const auto chain = open_source(options);
  const auto count =
      trace::write_csv_file(chain.tip(), options.output_path);
  std::cerr << "wrote " << count << " sessions to " << options.output_path
            << '\n';
  return 0;
}

int cmd_demand(const CliOptions& options) {
  const auto chain = open_source(options);
  // One metering pass serves both views (a pass regenerates the whole
  // stream, which is the dominant cost at scale).
  const auto meter =
      analysis::demand_meter(chain.tip(), options.system.stream_rate);
  const auto profile = meter.hourly_profile();
  analysis::Table table({"hour", "Gb/s"});
  for (int h = 0; h < 24; ++h) {
    table.add_row({std::to_string(h),
                   analysis::Table::num(profile[h].gbps(), 2)});
  }
  table.print(std::cout);
  const auto half_horizon =
      sim::SimTime::millis(chain.tip().horizon().millis_count() / 2);
  const auto peak =
      sim::peak_stats(meter, options.system.peak_window,
                      std::min(options.system.warmup, half_horizon));
  std::cout << "peak-window demand: " << peak.mean.gbps() << " Gb/s\n";
  return 0;
}

int cmd_run(const CliOptions& options) {
  const auto chain = open_source(options);
  const auto& source = chain.tip();
  const auto demand =
      analysis::demand_peak(source, options.system.stream_rate,
                            options.system.peak_window, options.system.warmup);

  std::cerr << "simulating " << core::to_string(options.system.strategy.kind);
  if (options.system.strategy.kind != core::StrategyKind::None &&
      options.system.admission_policy.kind != core::AdmissionKind::Always) {
    std::cerr << " + " << core::to_string(options.system.admission_policy.kind)
              << " admission";
  }
  std::cerr << " / " << options.system.neighborhood_size << " peers x "
            << options.system.per_peer_storage.as_gigabytes() << " GB ("
            << core::to_string(options.system.admission) << " admission, "
            << options.system.threads << " thread"
            << (options.system.threads == 1 ? "" : "s") << ", "
            << (options.materialize ? "materialized" : "streaming")
            << ")...\n";
  core::VodSystem system(source, options.system);
  const auto report = system.run();

  // With --json to stdout, stdout must stay machine-parseable: route the
  // human-readable summary to stderr instead.
  const bool json_on_stdout = options.emit_json && options.json_path == "-";
  std::ostream& human = json_on_stdout ? std::cerr : std::cout;

  human << report.to_string();
  human << "no-cache demand:  " << demand.mean.gbps() << " Gb/s\n"
        << "reduction:        "
        << analysis::Table::num(100.0 * report.reduction_vs(demand.mean), 1)
        << "%\n";

  // Headend fiber provisioning summary (max over neighborhoods).
  double fiber_q95 = 0.0;
  for (const auto& n : report.neighborhoods) {
    fiber_q95 = std::max(fiber_q95, n.fiber_peak.q95.mbps());
  }
  human << "worst headend fiber feed (p95): "
        << analysis::Table::num(fiber_q95, 0) << " Mb/s\n";

  if (options.emit_json) {
    if (options.json_path == "-") {
      core::write_json(report, std::cout);
      std::cout << '\n';
    } else {
      std::ofstream out(options.json_path);
      if (!out) {
        std::cerr << "cannot write " << options.json_path << '\n';
        return 1;
      }
      core::write_json(report, out);
      std::cerr << "wrote JSON report to " << options.json_path << '\n';
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse(argc, argv);
  try {
    if (options.command == "run") return cmd_run(options);
    if (options.command == "gen") return cmd_gen(options);
    if (options.command == "demand") return cmd_demand(options);
  } catch (const std::exception& error) {
    std::cerr << "vodcache: " << error.what() << '\n';
    return 1;
  }
  usage("unknown command");
}
