#!/usr/bin/env bash
# Tier-1 verify: configure -> build -> ctest.  Exits nonzero on any failure.
#
# Usage: tools/verify.sh [build-dir]       (default: build)
# Environment:
#   VODCACHE_WERROR=ON    promote warnings to errors for the whole tree
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . \
  -DVODCACHE_WERROR="${VODCACHE_WERROR:-OFF}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
